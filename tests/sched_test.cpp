// Tests for the shared scheduling subsystem (src/sched/):
//
//  - queue policies (FIFO, priority-with-FIFO-tie-break, bounded backfill)
//  - the FreeResourceIndex segment tree, including coherence under
//    allocations made behind the placer's back (Cluster observer hook)
//  - behavior-identity: the indexed first-fit placer must produce
//    bit-for-bit the same placements as the legacy linear scan over
//    randomized allocate/release/demand sequences (golden traces depend
//    on this).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "sched/free_index.hpp"
#include "sched/placement_policy.hpp"
#include "sched/placer.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"

namespace flotilla::sched {
namespace {

using platform::Cluster;
using platform::NodeId;
using platform::NodeRange;
using platform::ResourceDemand;
using platform::frontier_spec;

QueueEntry entry(std::string id, int priority = 16) {
  QueueEntry e;
  e.id = std::move(id);
  e.priority = priority;
  return e;
}

std::vector<std::string> ids_of(const TaskQueue& queue) {
  std::vector<std::string> ids;
  for (const auto& e : queue.entries()) ids.push_back(e.id);
  return ids;
}

// ------------------------------------------------------- queue policies

TEST(QueuePolicy, FifoKeepsArrivalOrderRegardlessOfPriority) {
  TaskQueue queue(std::make_unique<FifoPolicy>());
  queue.push(entry("a", 1));
  queue.push(entry("b", 31));
  queue.push(entry("c", 16));
  EXPECT_EQ(ids_of(queue), (std::vector<std::string>{"a", "b", "c"}));
  // Strict head-of-line blocking: one entry per pass.
  EXPECT_EQ(queue.scan_limit(), 1u);
}

TEST(QueuePolicy, PriorityOrdersHigherFirstWithFifoTieBreak) {
  TaskQueue queue(std::make_unique<PriorityFifoPolicy>());
  queue.push(entry("low.1", 8));
  queue.push(entry("high.1", 24));
  queue.push(entry("mid.1", 16));
  queue.push(entry("high.2", 24));  // ties behind the earlier equal entry
  queue.push(entry("mid.2", 16));
  EXPECT_EQ(ids_of(queue), (std::vector<std::string>{
                               "high.1", "high.2", "mid.1", "mid.2", "low.1"}));
  EXPECT_EQ(queue.scan_limit(), 1u);
}

TEST(QueuePolicy, BackfillBoundsScanDepth) {
  TaskQueue queue(std::make_unique<BackfillPolicy>(4));
  for (int i = 0; i < 3; ++i) queue.push(entry("t" + std::to_string(i)));
  EXPECT_EQ(queue.scan_limit(), 3u);  // clamped to queue size
  for (int i = 3; i < 10; ++i) queue.push(entry("t" + std::to_string(i)));
  EXPECT_EQ(queue.scan_limit(), 4u);  // clamped to depth
  static_cast<BackfillPolicy&>(queue.policy()).set_depth(64);
  EXPECT_EQ(queue.scan_limit(), 10u);
  EXPECT_THROW(BackfillPolicy(0), util::Error);
}

TEST(QueuePolicy, TaskQueueTakeRemoveAndDrain) {
  TaskQueue queue(std::make_unique<FifoPolicy>());
  auto payload = std::make_shared<int>(7);
  auto e = entry("keep");
  e.payload = payload;
  queue.push(std::move(e));
  auto v = entry("victim");
  v.payload = std::make_shared<int>(1);
  queue.push(std::move(v));
  queue.push(entry("tail"));

  EXPECT_EQ(queue.remove("absent"), nullptr);
  EXPECT_NE(queue.remove("victim"), nullptr);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.at(0).id, "keep");

  auto taken = queue.take(1);
  EXPECT_EQ(taken.id, "tail");

  auto drained = queue.drain();
  EXPECT_TRUE(queue.empty());
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(*std::static_pointer_cast<int>(drained.front().payload), 7);
}

// ---------------------------------------------------- free-resource index

TEST(FreeResourceIndex, TracksDirectNodeAllocationsViaObserver) {
  Cluster cluster(frontier_spec(), 5);  // non-power-of-two leaf count
  FreeResourceIndex index(cluster, cluster.all_nodes());
  EXPECT_EQ(index.max_free_cores(), 56);
  EXPECT_EQ(index.max_free_gpus(), 8);

  // Allocations made behind any placer's back must still be visible.
  auto slice = cluster.node(2).allocate(56, 8);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(index.find_any(2, 3, true, false), std::nullopt);
  EXPECT_EQ(index.find_any(0, 5, true, true), std::optional<NodeId>(0));

  cluster.node(2).release(*slice);
  EXPECT_EQ(index.find_any(2, 3, true, false), std::optional<NodeId>(2));
}

TEST(FreeResourceIndex, FindAnyIsDisjunctive) {
  Cluster cluster(frontier_spec(), 4);
  FreeResourceIndex index(cluster, cluster.all_nodes());
  // Node 0: no cores left, GPUs free. Node 1: untouched.
  ASSERT_TRUE(cluster.node(0).allocate(56, 0).has_value());
  EXPECT_EQ(index.find_any(0, 4, true, false), std::optional<NodeId>(1));
  EXPECT_EQ(index.find_any(0, 4, false, true), std::optional<NodeId>(0));
  EXPECT_EQ(index.find_any(0, 4, true, true), std::optional<NodeId>(0));
}

TEST(FreeResourceIndex, FindFitIsConjunctiveAndOrdered) {
  Cluster cluster(frontier_spec(), 8);
  FreeResourceIndex index(cluster, cluster.all_nodes());
  // Fragment: nodes 0..5 keep 8 free cores, node 6 keeps 40, node 7 full.
  for (NodeId id = 0; id < 6; ++id) {
    ASSERT_TRUE(cluster.node(id).allocate(48, 0).has_value());
  }
  ASSERT_TRUE(cluster.node(6).allocate(16, 8).has_value());

  EXPECT_EQ(index.find_fit(0, 8, 40, 0), std::optional<NodeId>(6));
  EXPECT_EQ(index.find_fit(0, 8, 8, 1), std::optional<NodeId>(0));
  // Node 6 has the cores but no GPUs; only untouched node 7 satisfies both.
  EXPECT_EQ(index.find_fit(0, 8, 40, 1), std::optional<NodeId>(7));
  ASSERT_TRUE(cluster.node(7).allocate(56, 8).has_value());
  EXPECT_EQ(index.find_fit(0, 8, 40, 1), std::nullopt);
  EXPECT_EQ(index.find_fit(7, 8, 1, 0), std::nullopt);
}

TEST(FreeResourceIndex, RespectsSubrangeWindows) {
  Cluster cluster(frontier_spec(), 9);
  FreeResourceIndex index(cluster, NodeRange{3, 4});  // nodes 3..6
  EXPECT_EQ(index.find_any(0, 9, true, false), std::optional<NodeId>(3));
  EXPECT_EQ(index.find_any(5, 9, true, false), std::optional<NodeId>(5));
  EXPECT_EQ(index.find_any(7, 9, true, false), std::nullopt);
  ASSERT_TRUE(cluster.node(3).allocate(56, 8).has_value());
  EXPECT_EQ(index.find_fit(3, 7, 56, 0), std::optional<NodeId>(4));
}

// --------------------------------------------------- placement policies

TEST(PlacementPolicy, ChunkedScanHonorsRotatingCursor) {
  // The legacy chunked path ignored the cursor, so multi-node tasks piled
  // onto low-numbered nodes; the scan must start at the cursor like the
  // loose path does.
  Cluster cluster(frontier_spec(), 4);
  NodeId cursor = 2;
  auto first = linear_try_place(cluster, {0, 4}, {56, 0, 56}, &cursor);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->slices.size(), 1u);
  EXPECT_EQ(first->slices[0].node, 2);
  EXPECT_EQ(cursor, 3);

  auto second = linear_try_place(cluster, {0, 4}, {112, 0, 56}, &cursor);
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->slices.size(), 2u);
  EXPECT_EQ(second->slices[0].node, 3);  // wraps after node 3
  EXPECT_EQ(second->slices[1].node, 0);
  EXPECT_EQ(cursor, 1);
}

TEST(PlacementPolicy, BestFitPacksTheBusiestQualifyingNode) {
  Cluster cluster(frontier_spec(), 3);
  ASSERT_TRUE(cluster.node(1).allocate(40, 0).has_value());
  BestFitPolicy policy;
  PlacementInput in{cluster, cluster.all_nodes()};
  auto placement = policy.place(in, {8, 0, 0});
  ASSERT_TRUE(placement.has_value());
  ASSERT_EQ(placement->slices.size(), 1u);
  EXPECT_EQ(placement->slices[0].node, 1);  // least free capacity fits
}

TEST(PlacementPolicy, GpuPackSteersByGpuDemand) {
  Cluster cluster(frontier_spec(), 3);
  ASSERT_TRUE(cluster.node(0).allocate(0, 6).has_value());
  GpuPackPolicy policy;
  PlacementInput in{cluster, cluster.all_nodes()};
  // CPU-only work goes to the GPU-poor node, preserving GPU capacity.
  auto cpu = policy.place(in, {4, 0, 0});
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(cpu->slices[0].node, 0);
  // GPU work goes to the GPU-rich node (id tie-break: 1 before 2).
  auto gpu = policy.place(in, {1, 1, 0});
  ASSERT_TRUE(gpu.has_value());
  EXPECT_EQ(gpu->slices[0].node, 1);
}

TEST(Placer, CountsAttemptsAndRotatesCursor) {
  Cluster cluster(frontier_spec(), 2);
  Placer placer(cluster, cluster.all_nodes());
  auto a = placer.place({1, 0, 0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(placer.cursor(), 1);
  auto b = placer.place({2 * 56, 0, 0});  // no longer fits
  EXPECT_FALSE(b.has_value());
  EXPECT_EQ(placer.stats().attempts, 2u);
  EXPECT_EQ(placer.stats().placed, 1u);
  EXPECT_EQ(placer.stats().rejected, 1u);
  placer.release(*a);
  EXPECT_TRUE(placer.place({2 * 56, 0, 0}).has_value());
}

// --------------------------------------------- indexed/legacy identity

// Property: the indexed first-fit placer and the legacy linear scan,
// driven by the same randomized allocate/release/demand sequence on
// mirrored clusters, make identical decisions — same accept/reject, same
// slices (node, core mask, GPU mask), same cursor.
class PlacementIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementIdentity, IndexedPlacerMatchesLegacyLinearScan) {
  sim::RngStream rng(GetParam());
  const int nodes = static_cast<int>(rng.uniform_int(1, 48));
  const bool rotate = rng.bernoulli(0.5);
  Cluster legacy(frontier_spec(), nodes);
  Cluster mirrored(frontier_spec(), nodes);
  const auto range = legacy.all_nodes();
  NodeId cursor = range.first;
  Placer placer(mirrored, range, {.rotate_cursor = rotate});

  std::vector<platform::Placement> legacy_held;
  std::vector<platform::Placement> mirrored_held;
  int placed = 0, refused = 0;
  for (int step = 0; step < 600; ++step) {
    if (legacy_held.empty() || rng.bernoulli(0.6)) {
      ResourceDemand demand;
      demand.cores = rng.uniform_int(0, 56 * 3);
      demand.gpus = rng.uniform_int(0, 12);
      if (rng.bernoulli(0.25)) demand.cores_per_node = 56;
      auto expected =
          linear_try_place(legacy, range, demand, rotate ? &cursor : nullptr);
      auto actual = placer.place(demand);
      ASSERT_EQ(expected.has_value(), actual.has_value())
          << "step " << step << " cores=" << demand.cores
          << " gpus=" << demand.gpus << " cpn=" << demand.cores_per_node;
      if (rotate) {
        ASSERT_EQ(placer.cursor(), cursor) << "step " << step;
      }
      if (!expected) {
        ++refused;
        continue;
      }
      ++placed;
      ASSERT_EQ(expected->slices.size(), actual->slices.size());
      for (std::size_t i = 0; i < expected->slices.size(); ++i) {
        ASSERT_EQ(expected->slices[i], actual->slices[i]) << "step " << step;
      }
      legacy_held.push_back(std::move(*expected));
      mirrored_held.push_back(std::move(*actual));
    } else {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(legacy_held.size()) - 1));
      legacy.release(legacy_held[victim]);
      placer.release(mirrored_held[victim]);
      legacy_held.erase(legacy_held.begin() +
                        static_cast<std::ptrdiff_t>(victim));
      mirrored_held.erase(mirrored_held.begin() +
                          static_cast<std::ptrdiff_t>(victim));
    }
  }
  // The sequence must exercise both outcomes to mean anything.
  EXPECT_GT(placed, 0);
  EXPECT_GT(refused, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementIdentity,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace flotilla::sched
