// Tests for the trace-replay workload driver.
#include <gtest/gtest.h>

#include <sstream>

#include "core/flotilla.hpp"
#include "util/error.hpp"
#include "workloads/trace_replay.hpp"

namespace flotilla::workloads {
namespace {

constexpr const char* kTrace =
    "submit_time,cores,gpus,cores_per_node,duration,modality,stage\n"
    "0,1,0,0,30,exec,warmup\n"
    "10,112,8,56,120,exec,mpi\n"
    "20,1,0,0,5,func,inference\n";

TEST(TraceReplay, ParsesCsvWithHeader) {
  std::istringstream in(kTrace);
  const auto entries = parse_trace(in);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].submit_time, 0.0);
  EXPECT_EQ(entries[0].task.stage, "warmup");
  EXPECT_EQ(entries[1].task.demand.cores, 112);
  EXPECT_EQ(entries[1].task.demand.cores_per_node, 56);
  EXPECT_EQ(entries[1].task.demand.gpus, 8);
  EXPECT_EQ(entries[2].task.modality, platform::TaskModality::kFunction);
}

TEST(TraceReplay, RoundTripsThroughWriter) {
  std::istringstream in(kTrace);
  const auto entries = parse_trace(in);
  std::ostringstream out;
  write_trace(out, entries);
  std::istringstream in2(out.str());
  const auto again = parse_trace(in2);
  ASSERT_EQ(again.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].submit_time, entries[i].submit_time);
    EXPECT_EQ(again[i].task.demand, entries[i].task.demand);
    EXPECT_DOUBLE_EQ(again[i].task.duration, entries[i].task.duration);
    EXPECT_EQ(again[i].task.modality, entries[i].task.modality);
    EXPECT_EQ(again[i].task.stage, entries[i].task.stage);
  }
}

TEST(TraceReplay, RejectsMalformedRows) {
  std::istringstream missing("1,2,3\n");
  EXPECT_THROW(parse_trace(missing), util::Error);
  std::istringstream garbage("abc,1,0,0,5,exec\n");
  EXPECT_THROW(parse_trace(garbage), util::Error);
  std::istringstream modality("0,1,0,0,5,python\n");
  EXPECT_THROW(parse_trace(modality), util::Error);
  std::istringstream negative("-5,1,0,0,5,exec\n");
  EXPECT_THROW(parse_trace(negative), util::Error);
}

TEST(TraceReplay, SubmitsAtRecordedVirtualTimes) {
  core::Session session(platform::frontier_spec(), 4, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 4,
       .backends = {{.type = "flux", .partitions = 1},
                    {.type = "dragon", .nodes = 1}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  int done = 0;
  tmgr.on_complete([&](const core::Task& task) {
    EXPECT_EQ(task.state(), core::TaskState::kDone);
    ++done;
  });

  std::istringstream in(kTrace);
  const auto entries = parse_trace(in);
  const sim::Time start = session.now();
  EXPECT_EQ(replay(tmgr, entries, start), 3u);
  session.run();
  EXPECT_EQ(done, 3);
  // The func task was submitted ~20 s after replay start.
  sim::Time t = 0;
  ASSERT_TRUE(tmgr.task("task.000002")
                  .state_time(core::TaskState::kTmgrScheduling, t));
  EXPECT_NEAR(t - start, 20.0, 0.5);
}

}  // namespace
}  // namespace flotilla::workloads
