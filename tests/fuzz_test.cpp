// Tests for the simulation fuzzing harness (src/check/): spec round-trip,
// generator validity/determinism, clean runs over generated scenarios, the
// invariant checkers catching a deliberately injected over-commit bug, and
// the shrinker reducing that failure to a minimal replayable spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/generator.hpp"
#include "check/invariants.hpp"
#include "check/runner.hpp"
#include "check/shrinker.hpp"
#include "check/spec.hpp"
#include "sim/random.hpp"

namespace flotilla::check {
namespace {

bool has_violation(const RunResult& result, const std::string& invariant) {
  return std::any_of(
      result.violations.begin(), result.violations.end(),
      [&](const Violation& v) { return v.invariant == invariant; });
}

// ------------------------------------------------------------ spec codec

TEST(ScenarioSpec, RoundTripsThroughString) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    sim::RngStream rng(seed, "fuzz.generate");
    const auto spec = generate_scenario(rng);
    const auto line = spec.to_string();
    EXPECT_EQ(ScenarioSpec::parse(line).to_string(), line);
  }
}

TEST(ScenarioSpec, RoundTripsFaultsAndBugField) {
  ScenarioSpec spec;
  spec.seed = 99;
  spec.nodes = 6;
  spec.backends = {{.type = "flux", .partitions = 2, .nodes = 3,
                    .flux_backfill_depth = 8},
                   {.type = "dragon", .partitions = 1, .nodes = 3}};
  spec.workload = "hetero";
  spec.duration = 1.25;
  spec.fail_probability = 0.125;
  spec.faults.push_back(
      {FaultSpec::Kind::kCrash, 12.5, "flux", 1, 0});
  spec.faults.push_back({FaultSpec::Kind::kCancelStorm, 3.0, "", 0, 7});
  spec.bug = "overcommit";
  const auto line = spec.to_string();
  const auto parsed = ScenarioSpec::parse(line);
  EXPECT_EQ(parsed.to_string(), line);
  ASSERT_EQ(parsed.faults.size(), 2u);
  EXPECT_EQ(parsed.faults[0].kind, FaultSpec::Kind::kCrash);
  EXPECT_EQ(parsed.faults[0].backend, "flux");
  EXPECT_EQ(parsed.faults[1].count, 7);
  EXPECT_EQ(parsed.bug, "overcommit");
  EXPECT_EQ(parsed.backends[0].flux_backfill_depth, 8);
}

TEST(ScenarioSpec, RoundTripsCrashRecoverDimensions) {
  ScenarioSpec spec;
  spec.seed = 5;
  spec.crash_at = 17;
  const auto line = spec.to_string();
  EXPECT_NE(line.find(";crash_at=17"), std::string::npos) << line;
  EXPECT_EQ(line.find(";recover="), std::string::npos)
      << "recover=true is the default and must not be emitted";
  EXPECT_EQ(ScenarioSpec::parse(line).crash_at, 17u);
  spec.recover = false;
  const auto survive = spec.to_string();
  EXPECT_NE(survive.find(";recover=0"), std::string::npos) << survive;
  const auto parsed = ScenarioSpec::parse(survive);
  EXPECT_EQ(parsed.crash_at, 17u);
  EXPECT_FALSE(parsed.recover);
  EXPECT_EQ(parsed.to_string(), survive);
  // Pre-recovery spec lines stay parseable and stable (no crash keys).
  ScenarioSpec def;
  EXPECT_EQ(def.to_string().find("crash_at"), std::string::npos);
}

TEST(ScenarioSpec, ParseRejectsGarbage) {
  EXPECT_THROW(ScenarioSpec::parse("frobnicate=1"), util::Error);
  EXPECT_THROW(ScenarioSpec::parse("nodes"), util::Error);
  EXPECT_THROW(ScenarioSpec::parse("tasks=many"), util::Error);
  EXPECT_THROW(ScenarioSpec::parse("faults=explode@1:flux:0"), util::Error);
  EXPECT_THROW(ScenarioSpec::parse("arrival=poisson"), util::Error);
  EXPECT_THROW(ScenarioSpec::parse("admit=reject"), util::Error);
}

TEST(ScenarioSpec, RoundTripsIngressDimensions) {
  ScenarioSpec spec;
  spec.seed = 9;
  spec.clients = 1000000;
  spec.arrival = "bursty";
  spec.arrival_param = 1250.5;
  spec.admit = "defer";
  spec.admit_capacity = 48;
  const auto line = spec.to_string();
  EXPECT_NE(line.find(";clients=1000000"), std::string::npos) << line;
  EXPECT_NE(line.find(";arrival=bursty:1250.5"), std::string::npos) << line;
  EXPECT_NE(line.find(";admit=defer:48"), std::string::npos) << line;
  const auto parsed = ScenarioSpec::parse(line);
  EXPECT_EQ(parsed.clients, 1000000);
  EXPECT_EQ(parsed.arrival, "bursty");
  EXPECT_DOUBLE_EQ(parsed.arrival_param, 1250.5);
  EXPECT_EQ(parsed.admit, "defer");
  EXPECT_EQ(parsed.admit_capacity, 48);
  EXPECT_EQ(parsed.to_string(), line);
  // Pre-ingress spec lines stay stable: clients=0 emits none of the keys.
  ScenarioSpec def;
  EXPECT_EQ(def.to_string().find("clients"), std::string::npos);
  EXPECT_EQ(def.to_string().find("arrival"), std::string::npos);
  EXPECT_EQ(def.to_string().find("admit"), std::string::npos);
}

// -------------------------------------------------------------- generator

TEST(Generator, IsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 17ull, 4242ull}) {
    sim::RngStream a(seed, "fuzz.generate");
    sim::RngStream b(seed, "fuzz.generate");
    EXPECT_EQ(generate_scenario(a).to_string(),
              generate_scenario(b).to_string());
  }
}

TEST(Generator, ProducesValidSpecs) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    sim::RngStream rng(seed, "fuzz.generate");
    const auto spec = generate_scenario(rng);
    EXPECT_GE(spec.nodes, static_cast<int>(spec.backends.size()));
    int assigned = 0;
    for (const auto& b : spec.backends) {
      EXPECT_GE(b.nodes, 1);
      EXPECT_GE(b.partitions, 1);
      EXPECT_LE(b.partitions, b.nodes);
      assigned += b.nodes;
    }
    EXPECT_EQ(assigned, spec.nodes);
    const auto caps = unit_caps(spec);
    EXPECT_GE(caps.nodes, 1);
    // Sleep-workload demands stay within the smallest schedulable unit.
    EXPECT_LE(spec.cores, caps.cores);
    EXPECT_LE(spec.gpus, caps.gpus);
    for (const auto& f : spec.faults) {
      if (f.kind != FaultSpec::Kind::kCrash) continue;
      EXPECT_TRUE(f.backend == "flux" || f.backend == "dragon" ||
                  f.backend == "prrte")
          << "crash fault targets a backend without a crash surface";
    }
  }
}

TEST(Generator, ForcedIngressArmsEveryScenarioDeterministically) {
  GeneratorOptions force;
  force.force_ingress = true;
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    sim::RngStream a(seed, "fuzz.generate");
    sim::RngStream b(seed, "fuzz.generate");
    const auto spec = generate_scenario(a, force);
    EXPECT_EQ(spec.to_string(), generate_scenario(b, force).to_string());
    EXPECT_GT(spec.clients, 0) << "force_ingress must arm every scenario";
    EXPECT_TRUE(spec.arrival == "poisson" || spec.arrival == "diurnal" ||
                spec.arrival == "bursty" || spec.arrival == "closed")
        << spec.arrival;
    EXPECT_GT(spec.arrival_param, 0.0);
    EXPECT_TRUE(spec.admit == "reject" || spec.admit == "defer");
    EXPECT_GE(spec.admit_capacity, 0);
    if (spec.arrival == "closed") {
      EXPECT_LE(spec.clients, 64) << "closed loops keep per-client state";
    }
  }
}

TEST(Runner, ForcedIngressScenariosHoldAllInvariants) {
  // Miniature of the nightly ingress-storm leg: forced clients/arrival/
  // admit dimensions, all oracles on (determinism, shard invariance,
  // conservation under rejection, closed-loop bounds, recovery).
  GeneratorOptions force;
  force.force_ingress = true;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    sim::RngStream rng(seed, "fuzz.generate");
    const auto spec = generate_scenario(rng, force);
    const auto result = run_with_oracles(spec);
    EXPECT_TRUE(result.ok()) << "seed " << seed << " spec " << spec.to_string()
                             << " first violation: "
                             << result.violations.front().to_string();
  }
}

TEST(Shrinker, IngressDimensionsShrinkTowardTheClassicPath) {
  ScenarioSpec spec;
  spec.clients = 50000;
  spec.arrival = "bursty";
  spec.arrival_param = 900.0;
  spec.admit = "defer";
  spec.admit_capacity = 7;
  const auto cands = [](const ScenarioSpec& s) {
    // Exercise candidates() through a shrink that rejects everything: the
    // spec must be offered an ingress-free reduction.
    bool saw_ingress_free = false;
    shrink(s, [&saw_ingress_free](const ScenarioSpec& candidate) {
      if (candidate.clients == 0) saw_ingress_free = true;
      return false;
    }, 100);
    return saw_ingress_free;
  };
  EXPECT_TRUE(cands(spec));
  // A failure that needs ingress keeps it but simplifies the dimensions.
  const auto shrunk = shrink(
      spec,
      [](const ScenarioSpec& candidate) { return candidate.clients > 0; },
      400);
  EXPECT_EQ(shrunk.spec.clients, 1);
  EXPECT_EQ(shrunk.spec.arrival, "poisson");
  EXPECT_EQ(shrunk.spec.admit, "reject");
  EXPECT_EQ(shrunk.spec.admit_capacity, 256);
}

// ------------------------------------------------------ transition matrix

TEST(Invariants, TransitionMatrixMatchesLifecycleGraph) {
  using S = core::TaskState;
  EXPECT_TRUE(legal_transition(S::kNew, S::kTmgrScheduling));
  EXPECT_TRUE(legal_transition(S::kTmgrScheduling, S::kStagingInput));
  EXPECT_TRUE(legal_transition(S::kTmgrScheduling, S::kAgentScheduling));
  EXPECT_TRUE(legal_transition(S::kExecutorPending, S::kAgentScheduling));
  EXPECT_TRUE(legal_transition(S::kRunning, S::kAgentScheduling));
  EXPECT_TRUE(legal_transition(S::kRunning, S::kDone));
  EXPECT_TRUE(legal_transition(S::kStagingOutput, S::kCanceled));
  // No skipping forward, no moving backwards, nothing after a terminal.
  EXPECT_FALSE(legal_transition(S::kNew, S::kRunning));
  EXPECT_FALSE(legal_transition(S::kTmgrScheduling, S::kExecutorPending));
  EXPECT_FALSE(legal_transition(S::kAgentScheduling, S::kRunning));
  EXPECT_FALSE(legal_transition(S::kRunning, S::kNew));
  EXPECT_FALSE(legal_transition(S::kDone, S::kFailed));
  EXPECT_FALSE(legal_transition(S::kCanceled, S::kAgentScheduling));
  EXPECT_FALSE(legal_transition(S::kFailed, S::kDone));
}

// ----------------------------------------------------------- clean sweeps

TEST(Runner, GeneratedScenariosHoldAllInvariants) {
  // A miniature of the CI fuzz smoke: every generated scenario must pass
  // every invariant plus the run-twice determinism oracle.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::RngStream rng(seed, "fuzz.generate");
    const auto spec = generate_scenario(rng);
    const auto result = run_with_oracles(spec);
    EXPECT_TRUE(result.ok()) << "seed " << seed << " spec " << spec.to_string()
                             << " first violation: "
                             << result.violations.front().to_string();
    EXPECT_TRUE(result.ready);
  }
}

TEST(Runner, ShardedSessionFingerprintMatchesSingleCalendar) {
  // Full-stack shard invariance: partitioning the Session engine's calendar
  // must not change a single observable timestamp or task outcome. Event
  // counts are not compared — cross-shard hops add mailbox events that do
  // not exist at shards=1.
  ScenarioSpec spec;
  spec.seed = 31;
  spec.nodes = 8;
  spec.backends = {{.type = "flux", .partitions = 2, .nodes = 4},
                   {.type = "dragon", .partitions = 2, .nodes = 4}};
  spec.workload = "hetero";
  spec.tasks = 60;
  spec.duration = 1.0;
  const auto reference = run_scenario(spec);
  ASSERT_TRUE(reference.ok()) << reference.violations.front().to_string();
  for (int shards : {2, 3, 4}) {
    ScenarioSpec sharded = spec;
    sharded.shards = shards;
    const auto result = run_scenario(sharded);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.fingerprint, reference.fingerprint)
        << "shards=" << shards << " diverged from the single calendar";
    EXPECT_EQ(result.done, reference.done);
    EXPECT_EQ(result.makespan, reference.makespan);
  }
}

TEST(Runner, ReplayOfSerializedSpecIsBitIdentical) {
  sim::RngStream rng(7, "fuzz.generate");
  const auto spec = generate_scenario(rng);
  const auto direct = run_scenario(spec);
  const auto replayed = run_scenario(ScenarioSpec::parse(spec.to_string()));
  EXPECT_EQ(direct.fingerprint, replayed.fingerprint);
  EXPECT_EQ(direct.events, replayed.events);
  EXPECT_EQ(direct.done, replayed.done);
}

// ------------------------------------------------ crash/recover oracle

TEST(Recovery, TwoHundredSeededCrashScenariosRecoverByteEquivalent) {
  // The acceptance sweep (docs/recovery.md): 200 seeded crash/recover
  // scenarios across all four backends, each crashed at a seeded record
  // index, recovered from the surviving journal prefix, and required to
  // finish byte- and state-equivalent to the uninterrupted run. Kept
  // bounded by using small scenarios; the nightly CI leg runs the same
  // oracle over full generated scenarios.
  const char* const backends[] = {"srun", "flux", "dragon", "prrte"};
  RunOptions jopts;
  jopts.journal = true;
  int swept = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ScenarioSpec spec;
    spec.seed = seed;
    spec.nodes = 2 + static_cast<int>(seed % 3);
    spec.backends = {{backends[seed % 4]}};
    spec.workload = "sleep";
    spec.tasks = 4 + static_cast<int>(seed % 6);
    spec.duration = 1.0 + 0.25 * static_cast<double>(seed % 4);
    if (seed % 3 == 0) {
      spec.faults.push_back({FaultSpec::Kind::kCancelStorm, 2.0, "", 0, 2});
    }
    const auto reference = run_scenario(spec, jopts);
    ASSERT_TRUE(reference.ok()) << "seed " << seed << ": "
                                << reference.violations.front().to_string();
    const auto records = static_cast<std::uint64_t>(std::count(
        reference.journal.begin(), reference.journal.end(), '\n'));
    spec.crash_at = 1 + (seed * 7919) % records;  // seeded crash index
    spec.recover = seed % 10 != 0;  // every tenth: survive-only mode
    const auto violations = check_recovery(spec, reference);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << " crash_at=" << spec.crash_at << ": "
        << violations.front().to_string();
    ++swept;
  }
  EXPECT_EQ(swept, 200);
}

TEST(Recovery, OracleRunsInsideRunWithOracles) {
  // crash_at on a spec routes through run_with_oracles: base runs journal,
  // and the recovery oracle executes without violations on a clean spec.
  ScenarioSpec spec;
  spec.seed = 23;
  spec.nodes = 3;
  spec.backends = {{"flux"}};
  spec.workload = "sleep";
  spec.tasks = 8;
  spec.duration = 1.5;
  spec.crash_at = 20;
  const auto result = run_with_oracles(spec);
  EXPECT_TRUE(result.ok()) << result.violations.front().to_string();
  EXPECT_FALSE(result.journal.empty())
      << "a crash_at spec must journal its base runs";
}

// ------------------------------------- injected bug: caught then shrunk

TEST(Runner, InjectedOvercommitIsCaughtByConservation) {
  ScenarioSpec spec;
  spec.seed = 11;
  spec.nodes = 3;
  spec.backends = {{"srun"}};
  spec.workload = "sleep";
  spec.tasks = 30;
  spec.duration = 2.0;
  spec.bug = "overcommit";
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "conservation"))
      << "the leaked core must surface as a conservation violation";
  // The same spec without the bug passes — the checkers flag the defect,
  // not the scenario.
  spec.bug = "none";
  EXPECT_TRUE(run_scenario(spec).ok());
}

TEST(Shrinker, ReducesOvercommitFailureToMinimalReplayableSpec) {
  sim::RngStream rng(3, "fuzz.generate");
  auto spec = generate_scenario(rng);
  spec.bug = "overcommit";  // plant the defect in a busy scenario
  ASSERT_FALSE(run_scenario(spec).ok());

  const auto shrunk = shrink(
      spec,
      [](const ScenarioSpec& candidate) {
        return !run_scenario(candidate).ok();
      },
      400);

  // Still failing, still replayable from its serialized form.
  const auto replay = ScenarioSpec::parse(shrunk.spec.to_string());
  const auto result = run_scenario(replay);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "conservation"));

  // And actually minimal: the leak needs no tasks, no faults, no second
  // backend, and no workload payload.
  EXPECT_EQ(shrunk.spec.tasks, 0);
  EXPECT_TRUE(shrunk.spec.faults.empty());
  EXPECT_EQ(shrunk.spec.backends.size(), 1u);
  EXPECT_EQ(shrunk.spec.workload, "null");
  EXPECT_EQ(shrunk.spec.bug, "overcommit");  // the defect itself survives
  EXPECT_LE(shrunk.spec.nodes, 2);
}

TEST(Runner, InjectedStateLossIsCaughtAndShrunk) {
  // The seeded recovery defect: a controller that "recovers" but drops its
  // fault schedule. Invisible to every uninterrupted-run invariant — only
  // the crash/recover oracle can see it, as a journal divergence once the
  // dropped fault fails to fire during replay.
  ScenarioSpec spec;
  spec.seed = 11;
  spec.nodes = 4;
  spec.backends = {{"srun"}};
  spec.workload = "sleep";
  spec.tasks = 24;
  spec.duration = 5.0;
  spec.faults.push_back({FaultSpec::Kind::kCancelStorm, 6.0, "", 0, 8});
  spec.crash_at = 10;
  spec.bug = "state-loss";

  const auto result = run_with_oracles(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(has_violation(result, "recovery"))
      << "state loss must surface through the recovery oracle";
  // Inert without a crash: the bug only bites on the recovery path.
  ScenarioSpec uncrashed = spec;
  uncrashed.crash_at = 0;
  EXPECT_TRUE(run_with_oracles(uncrashed).ok());

  // Shrinks to a minimal spec that keeps the ingredients the bug needs:
  // the crash point, the fault schedule, and the defect flag.
  const auto shrunk = shrink(
      spec,
      [](const ScenarioSpec& candidate) {
        return !run_with_oracles(candidate).ok();
      },
      200);
  EXPECT_GT(shrunk.spec.crash_at, 0u);
  EXPECT_TRUE(shrunk.spec.recover);
  EXPECT_FALSE(shrunk.spec.faults.empty());
  EXPECT_EQ(shrunk.spec.bug, "state-loss");

  // Still failing, still replayable from its serialized form — the
  // flotilla-fuzz --replay workflow.
  const auto replay = ScenarioSpec::parse(shrunk.spec.to_string());
  const auto replayed = run_with_oracles(replay);
  EXPECT_FALSE(replayed.ok());
  EXPECT_TRUE(has_violation(replayed, "recovery"));
}

TEST(Shrinker, LeavesPassingSpecsAlone) {
  sim::RngStream rng(5, "fuzz.generate");
  const auto spec = generate_scenario(rng);
  int evaluations = 0;
  const auto shrunk = shrink(spec, [&evaluations](const ScenarioSpec&) {
    ++evaluations;
    return false;  // nothing fails
  });
  EXPECT_EQ(shrunk.spec.to_string(), spec.to_string());
  EXPECT_EQ(shrunk.evaluations, evaluations);
}

}  // namespace
}  // namespace flotilla::check
