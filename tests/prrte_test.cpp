// Tests for the PRRTE DVM backend and the agent-side scheduling path it
// requires (§5: PRRTE "delegates coordination and scheduling to external
// systems" — here, RP's agent).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "prrte/dvm_backend.hpp"
#include "sched/placement_policy.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace flotilla::prrte {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::frontier_calibration;
using platform::frontier_spec;

// --------------------------------------------------------------- backend

struct DvmFixture {
  sim::Engine engine;
  Cluster cluster{frontier_spec(), 4};
  DvmBackend backend{engine, cluster, NodeRange{0, 4},
                     frontier_calibration().prrte, 42};

  DvmFixture() {
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(60.0);
    EXPECT_TRUE(ready);
  }

  platform::NodeId cursor = 0;

  // Builds a preplaced request, the way the agent does (rotating cursor
  // spreads tasks over the daemons).
  platform::LaunchRequest preplaced(int i, double duration,
                                    std::int64_t cores) {
    platform::LaunchRequest req;
    req.id = util::cat("task.", i);
    req.demand.cores = cores;
    req.duration = duration;
    auto placement =
        sched::linear_try_place(cluster, NodeRange{0, 4}, req.demand, &cursor);
    EXPECT_TRUE(placement.has_value());
    req.placement = std::move(*placement);
    req.preplaced = true;
    return req;
  }
};

TEST(DvmBackend, ReportsExternalScheduling) {
  DvmFixture fx;
  EXPECT_FALSE(fx.backend.self_scheduling());
  EXPECT_EQ(fx.backend.span(), (NodeRange{0, 4}));
  EXPECT_TRUE(fx.backend.accepts(platform::TaskModality::kExecutable));
  EXPECT_FALSE(fx.backend.accepts(platform::TaskModality::kFunction));
}

TEST(DvmBackend, DvmStartupIsOneTimeCost) {
  DvmFixture fx;
  EXPECT_NEAR(fx.backend.bootstrap_duration(), 4.6, 1.5);
}

TEST(DvmBackend, RejectsUnplacedRequests) {
  DvmFixture fx;
  platform::LaunchRequest req;
  req.id = "task.0";
  req.demand.cores = 1;
  EXPECT_THROW(fx.backend.submit(std::move(req)), util::Error);
}

TEST(DvmBackend, RunsPreplacedTasks) {
  DvmFixture fx;
  int starts = 0, done = 0;
  fx.backend.on_task_start([&](const std::string&) { ++starts; });
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    EXPECT_TRUE(outcome.success);
    ++done;
  });
  std::vector<platform::Placement> held;
  for (int i = 0; i < 50; ++i) {
    auto req = fx.preplaced(i, 5.0, 1);
    held.push_back(req.placement);
    fx.backend.submit(std::move(req));
  }
  fx.engine.run();
  EXPECT_EQ(starts, 50);
  EXPECT_EQ(done, 50);
  // The caller owns the placements (the DVM never frees resources).
  for (const auto& placement : held) {
    fx.cluster.release(placement);
  }
  EXPECT_EQ(fx.cluster.free_cores(NodeRange{0, 4}), 224);
}

TEST(DvmBackend, LaunchesFasterThanSchedulingBackends) {
  // The DVM's raison d'etre: minimal per-task overhead once up. 2,000
  // single-core nulls over 4 nodes launch at several hundred per second.
  DvmFixture fx;
  sim::RateSeries starts(1.0);
  fx.backend.on_task_start(
      [&](const std::string&) { starts.record(fx.engine.now()); });
  std::vector<platform::Placement> held;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome&) {
    // Free immediately so placement never runs out.
    fx.cluster.release(held.back());
    held.pop_back();
  });
  int submitted = 0;
  // Submit in completion-driven batches to keep placements valid.
  std::function<void()> pump = [&] {
    while (submitted < 3000 && fx.cluster.free_cores({0, 4}) > 0) {
      auto req = fx.preplaced(submitted, 0.0, 1);
      held.push_back(req.placement);
      ++submitted;
      fx.backend.submit(std::move(req));
    }
    if (submitted < 3000) fx.engine.in(0.05, pump);
  };
  pump();
  fx.engine.run();
  EXPECT_EQ(starts.total(), 3000u);
  EXPECT_GT(starts.window_rate(), 400.0);
}

TEST(DvmBackend, CrashFailsActiveTasks) {
  DvmFixture fx;
  int ok = 0, failed = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  std::vector<platform::Placement> held;
  for (int i = 0; i < 20; ++i) {
    auto req = fx.preplaced(i, 500.0, 1);
    held.push_back(req.placement);
    fx.backend.submit(std::move(req));
  }
  fx.engine.run(fx.engine.now() + 60.0);
  fx.backend.crash();
  fx.engine.run();
  EXPECT_FALSE(fx.backend.healthy());
  EXPECT_EQ(failed, 20);
  EXPECT_EQ(fx.backend.inflight(), 0u);
  for (const auto& placement : held) {
    fx.cluster.release(placement);
  }
}

// --------------------------------------------- agent-side scheduling path

struct PilotFixture {
  core::Session session{frontier_spec(), 4, 42};
  core::PilotManager pmgr{session};
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;

  PilotFixture() {
    pilot = &pmgr.submit({.nodes = 4, .backends = {{"prrte"}}});
    bool ok = false;
    pilot->launch([&](bool success, const std::string&) { ok = success; });
    session.run(60.0);
    EXPECT_TRUE(ok);
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }
};

TEST(AgentScheduling, RunsFullLifecycleOnPrrte) {
  PilotFixture fx;
  int done = 0;
  fx.tmgr->on_complete([&](const core::Task& task) {
    EXPECT_EQ(task.state(), core::TaskState::kDone);
    EXPECT_EQ(task.backend(), "prrte");
    ++done;
  });
  for (int i = 0; i < 100; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 10.0;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  EXPECT_EQ(done, 100);
  // Every placement the agent held was released.
  EXPECT_EQ(fx.session.cluster().free_cores({0, 4}), 224);
}

TEST(AgentScheduling, WaitlistsTasksBeyondCapacityFifo) {
  PilotFixture fx;
  std::vector<std::string> start_order;
  fx.pilot->agent().on_task_start(
      [&](const core::Task& task) { start_order.push_back(task.uid()); });
  fx.tmgr->on_complete([](const core::Task&) {});
  // 8 whole-node tasks on 4 nodes: two waves, agent-scheduled.
  for (int i = 0; i < 8; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 56;
    desc.demand.cores_per_node = 56;
    desc.duration = 100.0;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  ASSERT_EQ(start_order.size(), 8u);
  EXPECT_EQ(fx.tmgr->finished(), 8u);
  // Second wave started only after the first completed (~100 s later),
  // driven by the agent's completion-triggered waitlist drain.
  sim::Time t4 = 0, t3 = 0;
  ASSERT_TRUE(fx.tmgr->task(start_order[4])
                  .state_time(core::TaskState::kRunning, t4));
  ASSERT_TRUE(fx.tmgr->task(start_order[3])
                  .state_time(core::TaskState::kRunning, t3));
  EXPECT_GT(t4 - t3, 90.0);
}

TEST(AgentScheduling, UtilizationIsHighWithAgentPlacement) {
  PilotFixture fx;
  fx.tmgr->on_complete([](const core::Task&) {});
  // 4 waves of single-core 180 s tasks: the agent keeps the span full.
  for (int i = 0; i < 224 * 4; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 180.0;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  const auto& metrics = fx.pilot->agent().profiler().metrics();
  EXPECT_EQ(metrics.tasks_done(), 896u);
  EXPECT_GT(metrics.core_utilization(fx.pilot->total_cores()), 0.95);
}

TEST(AgentScheduling, DvmCrashFailsOverWaitlistToOtherBackend) {
  core::Session session(frontier_spec(), 8, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8,
       .backends = {{.type = "prrte", .nodes = 4},
                    {.type = "flux", .partitions = 1, .nodes = 4}}});
  bool ok = false;
  pilot.launch([&](bool success, const std::string&) { ok = success; });
  session.run(120.0);
  ASSERT_TRUE(ok);
  core::TaskManager tmgr(session, pilot.agent());
  int done = 0, failed = 0;
  tmgr.on_complete([&](const core::Task& task) {
    task.state() == core::TaskState::kDone ? ++done : ++failed;
  });
  // Whole-node tasks: prrte (preferred, registered first) runs 4, the
  // rest waitlist on it.
  for (int i = 0; i < 12; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 56;
    desc.demand.cores_per_node = 56;
    desc.duration = 300.0;
    desc.max_retries = 2;
    tmgr.submit(std::move(desc));
  }
  session.run(session.now() + 100.0);
  auto* dvm =
      dynamic_cast<DvmBackend*>(pilot.agent().backend("prrte"));
  ASSERT_NE(dvm, nullptr);
  dvm->crash("head daemon lost");
  session.run();
  EXPECT_EQ(done + failed, 12);
  EXPECT_EQ(failed, 0);  // running ones retried, waitlisted ones re-routed
  EXPECT_EQ(done, 12);
}

}  // namespace
}  // namespace flotilla::prrte
