// Tests for Dragon's real threaded components: the MPMC queue, the SPSC
// shmem channel, and the warm-worker function executor.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dragon/function_executor.hpp"
#include "dragon/mpmc_queue.hpp"
#include "dragon/shmem_channel.hpp"

namespace flotilla::dragon {
namespace {

// --------------------------------------------------------------- MpmcQueue

TEST(MpmcQueue, SingleThreadFifo) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto v = queue.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, TryPushFailsWhenFull) {
  MpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
}

TEST(MpmcQueue, CloseDrainsThenSignalsEnd) {
  MpmcQueue<int> queue(8);
  queue.try_push(1);
  queue.try_push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));  // pushes fail after close
  EXPECT_EQ(queue.pop(), 1);    // drains remain
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // then end-of-stream
}

TEST(MpmcQueue, ManyProducersManyConsumersDeliverExactlyOnce) {
  MpmcQueue<int> queue(64);
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.pop()) {
        sum.fetch_add(*v, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  queue.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<size_t>(kProducers + c)].join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ------------------------------------------------------------ ShmemChannel

TEST(ShmemChannel, CapacityRoundsUpToPowerOfTwo) {
  ShmemChannel<int> chan(5);
  EXPECT_GE(chan.capacity(), 5u);
  EXPECT_TRUE(chan.empty());
}

TEST(ShmemChannel, SingleThreadSendReceive) {
  ShmemChannel<int> chan(4);
  EXPECT_TRUE(chan.try_send(10));
  EXPECT_TRUE(chan.try_send(20));
  EXPECT_EQ(chan.size(), 2u);
  EXPECT_EQ(chan.try_receive(), 10);
  EXPECT_EQ(chan.try_receive(), 20);
  EXPECT_FALSE(chan.try_receive().has_value());
}

TEST(ShmemChannel, FullChannelRejectsSend) {
  ShmemChannel<int> chan(2);
  std::size_t sent = 0;
  while (chan.try_send(static_cast<int>(sent))) ++sent;
  EXPECT_EQ(sent, chan.capacity());
  EXPECT_TRUE(chan.try_receive().has_value());
  EXPECT_TRUE(chan.try_send(99));  // slot freed
}

TEST(ShmemChannel, SpscStressPreservesOrderAndContent) {
  ShmemChannel<int> chan(128);
  constexpr int kItems = 200000;
  std::thread producer([&chan] {
    for (int i = 0; i < kItems; ++i) {
      while (!chan.try_send(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = chan.try_receive()) {
      ASSERT_EQ(*v, expected);  // strict FIFO
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(chan.empty());
}

// -------------------------------------------------------- FunctionExecutor

TEST(FunctionExecutor, ExecutesSubmittedFunctions) {
  FunctionExecutor executor(2);
  auto f1 = executor.submit([] { return 21 * 2; });
  auto f2 = executor.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
  executor.shutdown();
  EXPECT_EQ(executor.tasks_executed(), 2u);
}

TEST(FunctionExecutor, PropagatesExceptionsThroughFutures) {
  FunctionExecutor executor(1);
  auto f = executor.submit(
      []() -> int { throw std::runtime_error("inference failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(FunctionExecutor, ParallelForCoversAllIndices) {
  FunctionExecutor executor(4);
  std::vector<std::atomic<int>> hits(500);
  executor.parallel_for(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FunctionExecutor, HighVolumeThroughput) {
  FunctionExecutor executor(4, 256);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  constexpr int kTasks = 10000;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(
        executor.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
  EXPECT_EQ(executor.tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(FunctionExecutor, SubmitAfterShutdownThrows) {
  FunctionExecutor executor(1);
  executor.shutdown();
  EXPECT_THROW(executor.submit([] { return 1; }), std::runtime_error);
}

TEST(FunctionExecutor, ShutdownIsIdempotent) {
  FunctionExecutor executor(2);
  executor.shutdown();
  executor.shutdown();  // no crash, no hang
}

TEST(FunctionExecutor, DefaultsToHardwareConcurrency) {
  FunctionExecutor executor;
  EXPECT_GE(executor.worker_count(), 1u);
}

// ------------------------------------------- sanitizer regression stress

// SPSC ring under sustained wrap-around with non-trivial payloads: every
// slot hand-off must happen-before the matching read (the acquire/release
// pairing on head_/tail_). TSan flags any ordering regression; ASan flags
// premature slot reuse. The tiny ring keeps both sides wrapping constantly.
TEST(ShmemChannel, StressProducerConsumerIndexOrdering) {
  ShmemChannel<std::string> channel(8);
  constexpr int kItems = 20000;
  std::thread producer([&channel] {
    for (int i = 0; i < kItems; ++i) {
      const std::string payload = std::to_string(i);
      while (!channel.try_send(payload)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto item = channel.try_receive()) {
      ASSERT_EQ(*item, std::to_string(expected));
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(channel.empty());
}

// Executor shutdown racing live submitters: a successful submit must imply
// execution (close() drains), and a failed one must throw cleanly — never
// lose a task, never touch freed queue state.
TEST(FunctionExecutor, StressShutdownRacesSubmitters) {
  for (int round = 0; round < 10; ++round) {
    FunctionExecutor executor(2, 32);
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&executor, &accepted] {
        for (int i = 0; i < 400; ++i) {
          try {
            executor.submit([] {});
            accepted.fetch_add(1);
          } catch (const std::runtime_error&) {
            return;  // executor went down mid-burst: expected
          }
        }
      });
    }
    executor.shutdown();
    for (auto& thread : submitters) thread.join();
    EXPECT_EQ(executor.tasks_executed(), accepted.load());
  }
}

}  // namespace
}  // namespace flotilla::dragon
