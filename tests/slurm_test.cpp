#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sim/stats.hpp"
#include "slurm/slurmctld.hpp"
#include "slurm/srun_backend.hpp"
#include "util/strfmt.hpp"

namespace flotilla::slurm {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::ResourceDemand;
using platform::frontier_calibration;
using platform::frontier_spec;

struct Fixture {
  sim::Engine engine;
  Cluster cluster;
  SrunBackend backend;

  explicit Fixture(int nodes, platform::SlurmCalibration cal =
                                  frontier_calibration().slurm)
      : cluster(frontier_spec(), nodes),
        backend(engine, cluster, NodeRange{0, nodes}, cal, 42) {
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(1.0);
    EXPECT_TRUE(ready);
  }
};

platform::LaunchRequest make_task(int i, double duration, std::int64_t cores,
                                  std::int64_t gpus = 0) {
  platform::LaunchRequest req;
  req.id = util::cat("task.", i);
  req.demand.cores = cores;
  req.demand.gpus = gpus;
  req.duration = duration;
  return req;
}

// ------------------------------------------------------------- placement

TEST(Slurmctld, GreedyPlacementSpansNodes) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  Slurmctld ctld(engine, cluster, NodeRange{0, 2},
                 frontier_calibration().slurm, 1);
  const auto placement = ctld.try_place(ResourceDemand{70, 0, 0});
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->total_cores(), 70);
  EXPECT_EQ(placement->node_count(), 2);
  EXPECT_EQ(cluster.free_cores(NodeRange{0, 2}), 112 - 70);
}

TEST(Slurmctld, PlacementFailureRollsBack) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  Slurmctld ctld(engine, cluster, NodeRange{0, 2},
                 frontier_calibration().slurm, 1);
  EXPECT_FALSE(ctld.try_place(ResourceDemand{113, 0, 0}).has_value());
  EXPECT_EQ(cluster.free_cores(NodeRange{0, 2}), 112);  // nothing leaked
}

TEST(Slurmctld, TightPlacementUsesWholeChunks) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 4);
  Slurmctld ctld(engine, cluster, NodeRange{0, 4},
                 frontier_calibration().slurm, 1);
  // MPI-style request: 112 cores at 56 per node -> exactly 2 nodes, with
  // 8 GPUs split across them.
  const auto placement = ctld.try_place(ResourceDemand{112, 8, 56});
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->node_count(), 2);
  EXPECT_EQ(placement->total_gpus(), 8);
  for (const auto& slice : placement->slices) EXPECT_EQ(slice.cores(), 56);
}

TEST(Slurmctld, TightPlacementFailsWhenNodesBusy) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  Slurmctld ctld(engine, cluster, NodeRange{0, 2},
                 frontier_calibration().slurm, 1);
  // Take one core on each node: no node can host a full 56-core chunk.
  ASSERT_TRUE(cluster.node(0).allocate(1, 0).has_value());
  ASSERT_TRUE(cluster.node(1).allocate(1, 0).has_value());
  EXPECT_FALSE(ctld.try_place(ResourceDemand{112, 0, 56}).has_value());
  EXPECT_EQ(cluster.free_cores(NodeRange{0, 2}), 110);
}

TEST(Slurmctld, GpuOnlyPlacement) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  Slurmctld ctld(engine, cluster, NodeRange{0, 1},
                 frontier_calibration().slurm, 1);
  const auto placement = ctld.try_place(ResourceDemand{1, 8, 0});
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->total_gpus(), 8);
  EXPECT_FALSE(ctld.try_place(ResourceDemand{1, 1, 0}).has_value());
}

// ---------------------------------------------------------- serialization

// Controller serialization must reproduce the paper's launch rates for null
// workloads: ~152 tasks/s on 1 node, ~61 tasks/s on 4 nodes (Fig 5a).
TEST(SrunBackend, NullTaskThroughputMatchesPaperShape) {
  auto run = [](int nodes) {
    Fixture fx(nodes);
    sim::RateSeries starts(1.0);
    fx.backend.on_task_start(
        [&](const std::string&) { starts.record(fx.engine.now()); });
    fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
    const int n_tasks = 2000;
    for (int i = 0; i < n_tasks; ++i) {
      fx.backend.submit(make_task(i, 0.0, 1));
    }
    fx.engine.run();
    EXPECT_EQ(starts.total(), static_cast<std::uint64_t>(n_tasks));
    return starts.window_rate();
  };
  const double rate1 = run(1);
  const double rate4 = run(4);
  EXPECT_NEAR(rate1, 152.0, 20.0);
  EXPECT_NEAR(rate4, 61.0, 8.0);
  EXPECT_GT(rate1, rate4);  // srun degrades with allocation size
}

// ----------------------------------------------------------- the ceiling

// Experiment srun (Fig 4): 896 single-core 180 s tasks on 4 nodes are capped
// at 112 concurrent tasks -> 50% of the 224 cores.
TEST(SrunBackend, ConcurrencyCeilingCapsUtilization) {
  Fixture fx(4);
  sim::TimeWeighted running;
  running.set(0.0, 0.0);
  int done = 0;
  fx.backend.on_task_start(
      [&](const std::string&) { running.add(fx.engine.now(), 1.0); });
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    EXPECT_TRUE(outcome.success);
    running.add(fx.engine.now(), -1.0);
    ++done;
  });
  for (int i = 0; i < 896; ++i) fx.backend.submit(make_task(i, 180.0, 1));
  fx.engine.run();
  EXPECT_EQ(done, 896);
  EXPECT_EQ(running.max_value(), 112.0);  // hard ceiling

  const double makespan = fx.engine.now();
  const double util =
      running.integral(makespan) * 1.0 /* core per task */ /
      (224.0 * makespan);
  EXPECT_NEAR(util, 0.50, 0.03);
}

TEST(SrunBackend, CeilingQueueIsFifo) {
  Fixture fx(4);
  std::vector<std::string> order;
  fx.backend.on_task_start(
      [&](const std::string& id) { order.push_back(id); });
  fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
  for (int i = 0; i < 300; ++i) fx.backend.submit(make_task(i, 5.0, 1));
  fx.engine.run();
  ASSERT_EQ(order.size(), 300u);
  // Ceiling admission is FIFO: the first 112 tasks to *start* are exactly
  // the first 112 submitted, though srun client jitter shuffles their
  // relative start order.
  std::vector<std::string> first(order.begin(), order.begin() + 112);
  std::sort(first.begin(), first.end());
  std::vector<std::string> expected;
  for (int i = 0; i < 112; ++i) expected.push_back(util::cat("task.", i));
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(first, expected);
}

// --------------------------------------------------------------- retries

TEST(SrunBackend, BlockedStepsRetryWithBackoff) {
  Fixture fx(1);  // 56 cores
  int done = 0;
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome&) { ++done; });
  // Two whole-node tasks: whichever wins the race takes the node for 100 s;
  // the loser must poll with backoff and cannot start before t=100.
  fx.backend.submit(make_task(0, 100.0, 56));
  fx.backend.submit(make_task(1, 100.0, 56));
  std::vector<sim::Time> start_times;
  fx.backend.on_task_start(
      [&](const std::string&) { start_times.push_back(fx.engine.now()); });
  fx.engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(fx.backend.controller().retries_served(), 0u);
  ASSERT_EQ(start_times.size(), 2u);
  EXPECT_GE(start_times[1], 100.0);
  // Polling (not events): the retry lands within one backoff period of the
  // release, bounded by step_retry_max.
  EXPECT_LE(start_times[1],
            100.0 + frontier_calibration().slurm.step_retry_max * 1.5);
}

// ------------------------------------------------------------- failures

TEST(SrunBackend, FailureInjectionReportsFailedTasks) {
  Fixture fx(4);
  int failed = 0, ok = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
    if (!outcome.success) {
      EXPECT_FALSE(outcome.error.empty());
    }
  });
  for (int i = 0; i < 400; ++i) {
    auto req = make_task(i, 0.0, 1);
    req.fail_probability = 0.25;
    fx.backend.submit(req);
  }
  fx.engine.run();
  EXPECT_EQ(ok + failed, 400);
  EXPECT_NEAR(static_cast<double>(failed), 100.0, 40.0);
}

TEST(SrunBackend, ShutdownFailsQueuedTasks) {
  Fixture fx(4);
  int failed = 0, ok = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  for (int i = 0; i < 200; ++i) fx.backend.submit(make_task(i, 60.0, 1));
  fx.engine.run(1.0);  // some tasks started, some queued on the ceiling
  fx.backend.shutdown();
  EXPECT_FALSE(fx.backend.healthy());
  fx.engine.run();
  EXPECT_EQ(ok + failed, 200);
  EXPECT_GT(failed, 0);
  EXPECT_EQ(fx.backend.inflight(), 0u);
}

TEST(SrunBackend, RejectsFunctionTasks) {
  Fixture fx(1);
  EXPECT_TRUE(fx.backend.accepts(platform::TaskModality::kExecutable));
  EXPECT_FALSE(fx.backend.accepts(platform::TaskModality::kFunction));
}

// Multi-node tasks hold all their slices until completion.
TEST(SrunBackend, MultiNodeStepLifecycle) {
  Fixture fx(4);
  int done = 0;
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome&) { ++done; });
  auto req = make_task(0, 50.0, 224);
  req.demand.cores_per_node = 56;
  req.demand.gpus = 32;
  fx.backend.submit(req);
  fx.engine.run(25.0);
  EXPECT_EQ(fx.cluster.free_cores(NodeRange{0, 4}), 0);
  EXPECT_EQ(fx.cluster.free_gpus(NodeRange{0, 4}), 0);
  fx.engine.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(fx.cluster.free_cores(NodeRange{0, 4}), 224);
  EXPECT_EQ(fx.cluster.free_gpus(NodeRange{0, 4}), 32);
}

}  // namespace
}  // namespace flotilla::slurm
