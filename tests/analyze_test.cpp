// Tests for the flotilla-analyze framework (src/analyze/) and binary
// (tools/flotilla_analyze.cpp): lexer edge cases against the library
// directly, call-graph resolution against in-test sources, pass
// detection against the seeded-violation fixture tree under
// tests/analyze_fixtures/ (one positive and one negative fixture per
// pass, including the PR1 ProcessPool callback-under-lock regression
// shape and the interprocedural deadlock/taint/shared-state seeds),
// SARIF output parsed and sanity-checked in-test, the --jobs
// byte-identity guarantee, the shared-state report, and the baseline
// suppression round trip.
//
// FLOTILLA_ANALYZE_BIN, FLOTILLA_ANALYZE_FIXTURES and FLOTILLA_REPO_ROOT
// are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "analyze/callgraph.hpp"
#include "analyze/lexer.hpp"
#include "analyze/pass.hpp"
#include "analyze/scopes.hpp"

namespace {

namespace fa = flotilla::analyze;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, split on newlines
};

RunResult run_command(const std::string& cmd) {
  FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  RunResult result;
  if (pipe == nullptr) return result;
  std::string output;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::size_t begin = 0;
  while (begin < output.size()) {
    std::size_t end = output.find('\n', begin);
    if (end == std::string::npos) end = output.size();
    if (end > begin) result.lines.push_back(output.substr(begin, end - begin));
    begin = end + 1;
  }
  return result;
}

RunResult run_analyze(const std::string& args) {
  return run_command(std::string(FLOTILLA_ANALYZE_BIN) + " " + args +
                     " 2>/dev/null");
}

std::string fixtures() { return FLOTILLA_ANALYZE_FIXTURES; }

// Arguments that scan the fixture tree the way CI scans the repo.
std::string fixture_args() {
  return "--layers " + fixtures() + "/layers.conf --strip-prefix " +
         fixtures() + "/ " + fixtures() + "/src";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

bool has_identifier(const fa::LexedFile& lex, const std::string& name) {
  for (const fa::Token& tok : lex.tokens) {
    if (tok.kind == fa::TokenKind::kIdentifier && tok.text == name) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Minimal JSON validator (structure only, no value extraction): enough to
// prove the SARIF document is well-formed JSON, not just greppable text.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    ws();
    return pos_ == text_.size();
  }

 private:
  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t len = std::string::traits_type::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string_value() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number_value() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number_value();
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      ws();
      if (!string_value()) return false;
      ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Lexer edge cases
// ---------------------------------------------------------------------------

TEST(AnalyzeLexerTest, RawStringContentNeverLeaks) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "auto s = R\"ev(rand() system_clock #include \"evil.hpp\")ev\";\n"
      "int after = 1;\n");
  EXPECT_FALSE(has_identifier(lex, "rand"));
  EXPECT_FALSE(has_identifier(lex, "system_clock"));
  EXPECT_TRUE(lex.includes.empty());
  EXPECT_TRUE(has_identifier(lex, "after"));
  // The raw string still shows up as one (emptied) string literal token.
  std::size_t strings = 0;
  std::size_t after_line = 0;
  for (const fa::Token& tok : lex.tokens) {
    if (tok.kind == fa::TokenKind::kString) ++strings;
    if (tok.text == "after") after_line = tok.line;
  }
  EXPECT_EQ(strings, 1u);
  EXPECT_EQ(after_line, 2u);  // line numbers survive the stripping
}

TEST(AnalyzeLexerTest, MultilineRawStringPreservesLineNumbers) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "auto s = R\"(line one\nrand()\nsystem_clock\n)\";\nint tail = 2;\n");
  EXPECT_FALSE(has_identifier(lex, "rand"));
  for (const fa::Token& tok : lex.tokens) {
    if (tok.text == "tail") {
      EXPECT_EQ(tok.line, 5u);
    }
  }
}

TEST(AnalyzeLexerTest, CommentsAreStrippedIncludingNestedLookalikes) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "/* block with // inside and rand() */ int x;\n"
      "// line with /* unterminated lookalike and system_clock\n"
      "int y; /* multi\nline\ncomment sleep_for() */ int z;\n");
  EXPECT_FALSE(has_identifier(lex, "rand"));
  EXPECT_FALSE(has_identifier(lex, "system_clock"));
  EXPECT_FALSE(has_identifier(lex, "sleep_for"));
  EXPECT_TRUE(has_identifier(lex, "x"));
  EXPECT_TRUE(has_identifier(lex, "y"));
  EXPECT_TRUE(has_identifier(lex, "z"));
  for (const fa::Token& tok : lex.tokens) {
    if (tok.text == "z") {
      EXPECT_EQ(tok.line, 5u);
    }
  }
}

TEST(AnalyzeLexerTest, StringifiedIncludeIsNotAnIncludeRecord) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "const char* s = \"#include \\\"evil.hpp\\\"\";\n"
      "#include \"core/real.hpp\"\n"
      "#include <vector>\n");
  ASSERT_EQ(lex.includes.size(), 2u);
  EXPECT_EQ(lex.includes[0].path, "core/real.hpp");
  EXPECT_EQ(lex.includes[0].line, 2u);
  EXPECT_FALSE(lex.includes[0].system);
  EXPECT_EQ(lex.includes[1].path, "vector");
  EXPECT_TRUE(lex.includes[1].system);
}

TEST(AnalyzeLexerTest, ConditionalDirectivesAreSurfaced) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "#if defined(FOO) && \\\n    defined(BAR)\n"
      "int a;\n"
      "#elif FOO > 1\n"
      "int b;\n"
      "#else\n"
      "int c;\n"
      "#endif\n");
  ASSERT_EQ(lex.conditionals.size(), 4u);
  EXPECT_EQ(lex.conditionals[0].kind, "if");
  EXPECT_NE(lex.conditionals[0].condition.find("defined(FOO)"),
            std::string::npos);
  EXPECT_NE(lex.conditionals[0].condition.find("defined(BAR)"),
            std::string::npos);
  EXPECT_EQ(lex.conditionals[1].kind, "elif");
  EXPECT_EQ(lex.conditionals[2].kind, "else");
  EXPECT_EQ(lex.conditionals[3].kind, "endif");
  // Conditionally-compiled code still tokenizes.
  EXPECT_TRUE(has_identifier(lex, "a"));
  EXPECT_TRUE(has_identifier(lex, "c"));
}

TEST(AnalyzeLexerTest, DigitSeparatorsAreNotCharLiterals) {
  const fa::LexedFile lex =
      fa::lex_string("t.cpp", "long n = 1'000'000; char c = 'x';\n");
  std::size_t numbers = 0, chars = 0;
  for (const fa::Token& tok : lex.tokens) {
    if (tok.kind == fa::TokenKind::kNumber) ++numbers;
    if (tok.kind == fa::TokenKind::kChar) ++chars;
  }
  EXPECT_EQ(numbers, 1u);
  EXPECT_EQ(chars, 1u);
  EXPECT_TRUE(has_identifier(lex, "n"));
}

TEST(AnalyzeLexerTest, WaiverRequiresRuleAndReason) {
  const fa::LexedFile lex = fa::lex_string(
      "t.cpp",
      "int a = time(nullptr);  // FLOTILLA_LINT_ALLOW(wall-clock): ok here\n"
      "int b = time(nullptr);  // FLOTILLA_LINT_ALLOW(wall-clock)\n"
      "int c = time(nullptr);  // FLOTILLA_LINT_ALLOW(*): anything goes\n"
      "int d = time(nullptr);\n");
  EXPECT_TRUE(fa::waived(lex, 1, "wall-clock"));
  EXPECT_FALSE(fa::waived(lex, 2, "wall-clock"));  // reason is mandatory
  EXPECT_TRUE(fa::waived(lex, 3, "wall-clock"));   // '*' waives any rule
  EXPECT_FALSE(fa::waived(lex, 1, "real-sleep"));  // different rule
  EXPECT_FALSE(fa::waived(lex, 4, "wall-clock"));
}

// ---------------------------------------------------------------------------
// Pass detection over the fixture tree
// ---------------------------------------------------------------------------

TEST(AnalyzeToolTest, FixtureScanReportsEverySeededViolation) {
  const RunResult result = run_analyze(fixture_args());
  EXPECT_EQ(result.exit_code, 1);

  const std::string conf = fixtures() + "/layers.conf";
  const std::vector<std::string> expected = {
      "src/core/cycle_a.hpp:4: error: [arch-cycle] include cycle between: "
      "src/core/cycle_a.hpp <-> src/core/cycle_b.hpp",
      "src/core/ipc_deadlock.cpp:16: error: [ipc-self-deadlock] call to "
      "'flush' while holding 'fixture::Journal::buf_mu_' self-deadlocks: "
      "'flush' (via 'append') re-acquires it; release the lock before the "
      "call, or acquire the mutex once at the top level",
      "src/core/ipc_deadlock.cpp:21: error: [ipc-blocking-under-lock] "
      "call to 'block_for_space' may block while holding "
      "'fixture::Journal::buf_mu_': 'block_for_space' reaches 'wait'; "
      "release the lock before calling into blocking code",
      "src/core/lock_order.cpp:12: error: [lock-order] mutex 'flush_mu_' "
      "acquired while holding 'queue_mu_', but the opposite order exists "
      "at src/core/lock_order.cpp:17; pick one global order to avoid ABBA "
      "deadlock",
      "src/core/lock_order.cpp:17: error: [lock-order] mutex 'queue_mu_' "
      "acquired while holding 'flush_mu_', but the opposite order exists "
      "at src/core/lock_order.cpp:12; pick one global order to avoid ABBA "
      "deadlock",
      "src/core/pool.cpp:16: error: [lock-callback] user callback 'done' "
      "invoked while holding 'mu_' in 'finish'; run callbacks outside the "
      "lock (hand them to the caller), or they can re-enter and deadlock",
      "src/core/pool.cpp:22: error: [lock-callback] user callback 'done' "
      "invoked while holding 'mu_' in 'submit'; run callbacks outside the "
      "lock (hand them to the caller), or they can re-enter and deadlock",
      "src/core/pool.cpp:26: error: [lock-virtual] virtual method "
      "'on_drain' called while holding 'mu_' in 'submit'; dynamic dispatch "
      "under a lock can land in user code that re-enters this component",
      "src/core/span_bad.cpp:21: error: [span-balance] early return leaks "
      "span 'kTaskSubmit' begun at line 19 in 'submit' (closed at line "
      "23); close the span before returning",
      "src/orphan/unmapped.hpp:1: error: [arch-unmapped] file is not "
      "covered by any layer prefix in " +
          conf + "; add it to a layer",
      "src/sched/bad_layering.cpp:3: error: [arch-layering] include of "
      "\"core/pool.hpp\" makes layer 'sched' depend on layer 'core', "
      "which the declared DAG in " +
          conf + " forbids",
      "src/sim/det_bad.cpp:8: error: [wall-clock] wall-clock time in "
      "simulation code breaks determinism; use sim::Engine::now()",
      "src/sim/ipc_taint.cpp:20: error: [ipc-determinism] trace span "
      "takes a value from 'stamp': 'stamp' (via 'wall_seconds') reads "
      "wall-clock time; trace content must be simulation-deterministic "
      "(derive it from sim time or a seeded RngStream)",
  };
  EXPECT_EQ(result.lines, expected);
}

// The negative fixtures (correct lock handling per the PR1 fix, balanced
// and event-driven spans, comment/string-only determinism mentions, a
// waived call, lock-released-before-the-call interprocedural shapes, a
// deterministic span payload, and the shared-state root whose notes
// never gate) are part of the tree scanned above; none of them may
// appear in the diagnostics. Scanning them alone must come back clean.
TEST(AnalyzeToolTest, NegativeFixturesStayClean) {
  for (const char* rel :
       {"src/core/lock_ok.cpp", "src/core/span_ok.cpp",
        "src/core/ipc_lock_ok.cpp", "src/sim/det_ok.cpp",
        "src/sim/ipc_taint_ok.cpp", "src/sim/engine_loop.cpp",
        "src/util/helpers.hpp", "src/util/wallclock.hpp"}) {
    const RunResult result = run_analyze(
        "--layers " + fixtures() + "/layers.conf --strip-prefix " +
        fixtures() + "/ " + fixtures() + "/" + rel);
    EXPECT_EQ(result.exit_code, 0) << rel;
    EXPECT_TRUE(result.lines.empty()) << rel << ": " << result.lines[0];
  }
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------

TEST(AnalyzeToolTest, SarifIsValidJsonWithOneResultPerFinding) {
  const std::string out = testing::TempDir() + "analyze_test.sarif";
  const RunResult result =
      run_analyze(fixture_args() + " --sarif --output " + out);
  EXPECT_EQ(result.exit_code, 1);  // findings still fail the run

  const std::string sarif = read_file(out);
  JsonChecker checker(sarif);
  EXPECT_TRUE(checker.valid()) << "SARIF is not well-formed JSON";

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"flotilla-analyze\""), std::string::npos);
  // 13 error findings plus the two shared-state notes from engine_loop.cpp.
  EXPECT_EQ(count_occurrences(sarif, "\"ruleId\""), 15u);
  // Spot-check one physical location end to end.
  EXPECT_NE(sarif.find("\"ruleId\": \"span-balance\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/span_bad.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 21"), std::string::npos);
  // Every pass's rules are declared as tool.driver.rules.
  for (const char* rule :
       {"arch-config", "arch-cycle", "arch-layering", "arch-unmapped",
        "conf-cross-shard-write", "conf-stale-claim", "conf-unproven",
        "ipc-blocking-under-lock", "ipc-determinism", "ipc-self-deadlock",
        "lock-callback", "lock-order", "lock-virtual", "shared-state",
        "span-balance", "wall-clock", "unordered-iteration"}) {
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + rule + "\""),
              std::string::npos)
        << rule;
  }
  // Nothing is suppressed without a baseline.
  EXPECT_EQ(count_occurrences(sarif, "\"suppressions\""), 0u);
}

TEST(AnalyzeToolTest, SarifRuleMetadataCarriesDocsAnchorsAndSeverity) {
  const std::string out = testing::TempDir() + "analyze_meta.sarif";
  run_analyze(fixture_args() + " --sarif --output " + out);
  const std::string sarif = read_file(out);
  // All 20 declared rules carry a fullDescription and a helpUri anchored
  // into docs/correctness.md; the three ipc rules and shared-state point
  // at the interprocedural section, the three conf rules at the
  // confinement-proofs section.
  EXPECT_EQ(count_occurrences(sarif, "\"fullDescription\""), 20u);
  EXPECT_EQ(count_occurrences(sarif, "\"helpUri\": \"docs/correctness.md#"),
            20u);
  EXPECT_EQ(count_occurrences(
                sarif,
                "\"helpUri\": "
                "\"docs/correctness.md#interprocedural-analysis\""),
            4u);
  EXPECT_EQ(count_occurrences(
                sarif,
                "\"helpUri\": \"docs/correctness.md#confinement-proofs\""),
            3u);
  EXPECT_EQ(count_occurrences(sarif, "\"defaultConfiguration\""), 20u);
  // shared-state is the only note-severity rule: its defaultConfiguration
  // plus its two fixture results are the only "note" levels in the
  // document; every other rule and result is level "error".
  EXPECT_EQ(count_occurrences(sarif, "\"level\": \"note\""), 3u);
  EXPECT_EQ(count_occurrences(sarif, "\"level\": \"warning\""), 0u);
  EXPECT_NE(sarif.find("\"ruleId\": \"shared-state\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/engine_loop.cpp\""),
            std::string::npos);
}

TEST(AnalyzeToolTest, SarifIsByteIdenticalAcrossRuns) {
  const std::string a = testing::TempDir() + "analyze_a.sarif";
  const std::string b = testing::TempDir() + "analyze_b.sarif";
  run_analyze(fixture_args() + " --sarif --output " + a);
  run_analyze(fixture_args() + " --sarif --output " + b);
  EXPECT_EQ(read_file(a), read_file(b));
}

// ---------------------------------------------------------------------------
// Baseline suppression round trip
// ---------------------------------------------------------------------------

TEST(AnalyzeToolTest, BaselineRoundTripSuppressesGrandfatheredFindings) {
  const std::string baseline = testing::TempDir() + "analyze_baseline.txt";

  // Write: every current finding becomes part of the baseline.
  const RunResult write = run_analyze(
      fixture_args() + " --baseline " + baseline + " --write-baseline");
  EXPECT_EQ(write.exit_code, 0);

  // Re-run against it: same tree, zero fresh findings, exit 0.
  const RunResult clean =
      run_analyze(fixture_args() + " --baseline " + baseline);
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_TRUE(clean.lines.empty());

  // SARIF still reports all results, but marks them suppressed.
  const std::string out = testing::TempDir() + "analyze_suppressed.sarif";
  const RunResult sarif_run = run_analyze(fixture_args() + " --baseline " +
                                          baseline + " --sarif --output " +
                                          out);
  EXPECT_EQ(sarif_run.exit_code, 0);
  const std::string sarif = read_file(out);
  JsonChecker checker(sarif);
  EXPECT_TRUE(checker.valid());
  // All 15 results (13 errors + 2 notes) are reported, but only the 13
  // error findings live in the baseline and get suppressed: notes never
  // enter the baseline.
  EXPECT_EQ(count_occurrences(sarif, "\"ruleId\""), 15u);
  EXPECT_EQ(count_occurrences(sarif, "\"suppressions\""), 13u);

  // Dropping one entry makes exactly that finding fresh again.
  std::string text = read_file(baseline);
  const std::string victim = "span-balance|src/core/span_bad.cpp";
  const std::size_t at = text.find(victim);
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at);
  text.erase(at, eol - at + 1);
  {
    std::ofstream rewrite(baseline, std::ios::binary | std::ios::trunc);
    rewrite << text;
  }
  const RunResult fresh =
      run_analyze(fixture_args() + " --baseline " + baseline);
  EXPECT_EQ(fresh.exit_code, 1);
  ASSERT_EQ(fresh.lines.size(), 1u);
  EXPECT_NE(fresh.lines[0].find("span-balance"), std::string::npos);
  EXPECT_NE(fresh.lines[0].find("src/core/span_bad.cpp:21"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Real tree: the CI gate
// ---------------------------------------------------------------------------

// Same invocation scripts/run_analyze.sh uses: the committed layers.conf
// and baseline must hold over the real src/ + tools/ tree.
TEST(AnalyzeToolTest, RepoTreeIsCleanAgainstCommittedBaseline) {
  const RunResult result = run_command(
      std::string("cd ") + FLOTILLA_REPO_ROOT + " && " +
      FLOTILLA_ANALYZE_BIN + " --baseline analyze/baseline.txt 2>/dev/null");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
}

TEST(AnalyzeToolTest, ListRulesNamesEveryPassRule) {
  const RunResult result = run_analyze("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  const std::vector<std::string> expected = {
      "arch-config",          "arch-cycle",
      "arch-layering",        "arch-unmapped",
      "conf-cross-shard-write", "conf-stale-claim",
      "conf-unproven",        "hardware-concurrency",
      "ipc-blocking-under-lock", "ipc-determinism",
      "ipc-self-deadlock",    "lock-callback",
      "lock-order",           "lock-virtual",
      "real-sleep",           "shared-state",
      "span-balance",         "unordered-iteration",
      "unseeded-random",      "wall-clock"};
  EXPECT_EQ(result.lines, expected);
}

// ---------------------------------------------------------------------------
// Call-graph resolution (library-level, in-test sources)
// ---------------------------------------------------------------------------

fa::SourceFile make_source(const std::string& name, const std::string& text) {
  fa::SourceFile file;
  file.display = name;
  file.lex = fa::lex_string(name, text);
  file.bodies = fa::build_bodies(file.lex);
  file.facts = fa::collect_facts(file.lex, file.bodies, nullptr);
  return file;
}

int find_fn(const fa::ProgramModel& model, const std::string& qualified) {
  for (const fa::FunctionNode& node : model.functions) {
    if (node.def.qualified == qualified) return node.id;
  }
  return -1;
}

TEST(AnalyzeCallGraphTest, ResolvesOverloadsNamespacesAndVirtualDispatch) {
  fa::AnalysisInput input;
  input.files.push_back(make_source(
      "a.cpp",
      "namespace app {\n"
      "int scale(int v) { return v * 2; }\n"
      "double scale(double v) { return v * 2.0; }\n"
      "int use_scale() { return scale(3); }\n"
      "}  // namespace app\n"));
  input.files.push_back(make_source(
      "b.cpp",
      "namespace app {\n"
      "class Codec {\n"
      " public:\n"
      "  virtual void pack() {}\n"
      "};\n"
      "class FastCodec : public Codec {\n"
      " public:\n"
      "  void pack() override { encode(); }\n"
      "  void encode() {}\n"
      "};\n"
      "void drive(Codec& c) { c.pack(); }\n"
      "}  // namespace app\n"));
  input.files.push_back(make_source(
      "c.cpp",
      "namespace web {\n"
      "int scale(int v) { return v; }\n"
      "}  // namespace web\n"
      "int outside() { return app::scale(7); }\n"));
  const fa::ProgramModel model = fa::build_program(input);

  // Three definitions share the bare name; overload resolution is
  // name-level, so an unqualified call inside app targets both app
  // overloads and nothing else.
  const std::vector<int>* scales = model.by_name("scale");
  ASSERT_NE(scales, nullptr);
  EXPECT_EQ(scales->size(), 3u);
  const int user = find_fn(model, "app::use_scale");
  ASSERT_GE(user, 0);
  ASSERT_EQ(model.callees[user].size(), 2u);
  for (const int callee : model.callees[user]) {
    EXPECT_EQ(model.functions[callee].def.qualified, "app::scale");
  }

  // An explicitly qualified call from outside matches component-wise:
  // app::scale hits both app overloads, never web::scale.
  const int outside = find_fn(model, "outside");
  ASSERT_GE(outside, 0);
  ASSERT_EQ(model.callees[outside].size(), 2u);
  for (const int callee : model.callees[outside]) {
    EXPECT_EQ(model.functions[callee].def.qualified, "app::scale");
  }

  // Virtual dispatch through the base: every override is a target.
  const int drive = find_fn(model, "app::drive");
  ASSERT_GE(drive, 0);
  std::vector<std::string> packs;
  for (const int callee : model.callees[drive]) {
    packs.push_back(model.functions[callee].def.qualified);
  }
  std::sort(packs.begin(), packs.end());
  const std::vector<std::string> expected = {"app::Codec::pack",
                                             "app::FastCodec::pack"};
  EXPECT_EQ(packs, expected);
}

TEST(AnalyzeCallGraphTest, SummariesPropagateMutexesBottomUp) {
  fa::AnalysisInput input;
  input.files.push_back(make_source(
      "store.cpp",
      "namespace app {\n"
      "class Store {\n"
      " public:\n"
      "  void deep() { mid(); }\n"
      " private:\n"
      "  void mid() { leaf(); }\n"
      "  void leaf() { std::lock_guard<std::mutex> lock(mu_); }\n"
      "  std::mutex mu_;\n"
      "};\n"
      "}  // namespace app\n"));
  const fa::ProgramModel model = fa::build_program(input);

  const int deep = find_fn(model, "app::Store::deep");
  const int leaf = find_fn(model, "app::Store::leaf");
  ASSERT_GE(deep, 0);
  ASSERT_GE(leaf, 0);

  // leaf acquires the mutex directly (no via); deep inherits it through
  // the two-hop chain, and the trail renders the path.
  const auto direct = model.summaries[leaf].mutexes.find("app::Store::mu_");
  ASSERT_NE(direct, model.summaries[leaf].mutexes.end());
  EXPECT_LT(direct->second.via, 0);
  const auto inherited =
      model.summaries[deep].mutexes.find("app::Store::mu_");
  ASSERT_NE(inherited, model.summaries[deep].mutexes.end());
  EXPECT_GE(inherited->second.via, 0);
  EXPECT_EQ(model.trail(deep, &fa::FunctionSummary::mutexes,
                        "app::Store::mu_"),
            " (via 'mid' -> 'leaf')");
}

// ---------------------------------------------------------------------------
// --jobs byte-identity and the shared-state report
// ---------------------------------------------------------------------------

TEST(AnalyzeToolTest, JobCountNeverChangesOutput) {
  const std::string a = testing::TempDir() + "analyze_jobs1.sarif";
  const std::string b = testing::TempDir() + "analyze_jobs8.sarif";
  const RunResult one =
      run_analyze(fixture_args() + " --jobs 1 --sarif --output " + a);
  const RunResult eight =
      run_analyze(fixture_args() + " --jobs 8 --sarif --output " + b);
  EXPECT_EQ(one.exit_code, eight.exit_code);
  EXPECT_EQ(read_file(a), read_file(b));
  const RunResult text_one = run_analyze(fixture_args() + " --jobs 1");
  const RunResult text_eight = run_analyze(fixture_args() + " --jobs 8");
  EXPECT_EQ(text_one.lines, text_eight.lines);
}

TEST(AnalyzeToolTest, SharedStateReportInventoriesUnguardedWrites) {
  const std::string report = testing::TempDir() + "analyze_ssr.txt";
  const RunResult result =
      run_analyze(fixture_args() + " --shared-state-report " + report);
  EXPECT_EQ(result.exit_code, 1);  // the seeded error findings, not notes
  const std::string text = read_file(report);
  const std::string expected =
      "# flotilla-analyze shared-state report: unguarded writes reachable "
      "from sim::Engine::run\n"
      "# total 2 entries: 0 confined-by-annotation, 2 unannotated\n"
      "# kind\ttarget\tfirst-site\tsites\tfunction\tconfinement\n"
      "member\ttotal_\tsrc/sim/engine_loop.cpp:12\t1\tsim::Tally::"
      "accumulate\t-\n"
      "member\tticks_\tsrc/sim/engine_loop.cpp:27\t1\tsim::Engine::step"
      "\t-\n";
  EXPECT_EQ(text, expected);
  // guarded_ is written under mu_ and OfflineReport::bump is unreachable
  // from the root: neither may be inventoried.
  EXPECT_EQ(text.find("guarded_"), std::string::npos);
  EXPECT_EQ(text.find("lines_"), std::string::npos);
}

TEST(AnalyzeToolTest, ConfinedAnnotationsMarkInventoryEntries) {
  // An exact-target annotation plus a component-wildcard one: total_ is
  // annotated by name, ticks_ via Engine::* covering every member write
  // in sim::Engine. The entries stay in the report (the inventory never
  // shrinks silently) but carry the reason instead of '-'.
  const std::string confined = testing::TempDir() + "analyze_confined.txt";
  {
    std::ofstream out(confined);
    out << "# reviewed claims\n"
        << "total_ Tally::accumulate assume shard-confined: one tally "
           "per shard\n"
        << "* Engine::* assume owner-confined: during rounds\n";
  }
  const std::string report = testing::TempDir() + "analyze_ssr_conf.txt";
  const RunResult result =
      run_analyze(fixture_args() + " --shared-state-report " + report +
                  " --confined " + confined);
  EXPECT_EQ(result.exit_code, 1);
  const std::string text = read_file(report);
  EXPECT_NE(text.find("# total 2 entries: 2 confined-by-annotation, "
                      "0 unannotated\n"),
            std::string::npos);
  EXPECT_NE(text.find("\tsim::Tally::accumulate\tshard-confined: one "
                      "tally per shard\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("\tsim::Engine::step\towner-confined: during rounds\n"),
      std::string::npos);

  // Malformed annotation lines are a usage error, not silently ignored —
  // with or without a report destination.
  const std::string broken = testing::TempDir() + "analyze_broken.txt";
  {
    std::ofstream out(broken);
    out << "ticks_\n";
  }
  const RunResult bad =
      run_analyze(fixture_args() + " --shared-state-report " + report +
                  " --confined " + broken);
  EXPECT_EQ(bad.exit_code, 2);
  const RunResult bad_alone =
      run_analyze(fixture_args() + " --confined " + broken);
  EXPECT_EQ(bad_alone.exit_code, 2);

  // A bad status column or an unknown claim kind are parse errors too.
  {
    std::ofstream out(broken);
    out << "ticks_ Engine::step maybe owner-confined: who knows\n";
  }
  EXPECT_EQ(run_analyze(fixture_args() + " --confined " + broken).exit_code,
            2);
  {
    std::ofstream out(broken);
    out << "ticks_ Engine::step verified gc-confined: not a kind\n";
  }
  EXPECT_EQ(run_analyze(fixture_args() + " --confined " + broken).exit_code,
            2);
}

// ---------------------------------------------------------------------------
// Confinement proofs (tests/analyze_fixtures/conf/)
// ---------------------------------------------------------------------------

std::string conf_fixtures() { return fixtures() + "/conf"; }

std::string conf_args() {
  return "--layers " + conf_fixtures() + "/layers.conf --strip-prefix " +
         conf_fixtures() + "/ " + conf_fixtures() + "/src";
}

TEST(AnalyzeConfinementTest, CleanClaimsAllProve) {
  const std::string report = testing::TempDir() + "analyze_conf_clean.txt";
  const RunResult result = run_analyze(
      conf_args() + " --confined " + conf_fixtures() +
      "/confined_clean.txt --confinement-report " + report);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
  const std::string text = read_file(report);
  EXPECT_NE(text.find("# total 5 claims: 2 proved, 3 assumed, 0 failed\n"),
            std::string::npos);
  // The shard-confined proof names the discovered home-shard key and the
  // owner-confined proof counts its writers.
  EXPECT_NE(text.find("proved\tverified\tshard-confined\t*\t"
                      "sim::ShardTally::*\t2\thome=sim::ShardTally::shard_"),
            std::string::npos);
  EXPECT_NE(text.find("proved\tverified\towner-confined\t*\t"
                      "sim::Engine::*\t2\t"),
            std::string::npos);
}

TEST(AnalyzeConfinementTest, SeededClaimsFailEveryRule) {
  const RunResult result = run_analyze(conf_args() + " --confined " +
                                       conf_fixtures() +
                                       "/confined_seeded.txt");
  EXPECT_EQ(result.exit_code, 1);
  std::string all;
  for (const std::string& line : result.lines) all += line + "\n";
  // Mirror: two writers with different single-key contexts.
  EXPECT_NE(all.find("src/sim/mirror.cpp:6: error: [conf-cross-shard-write]"),
            std::string::npos);
  EXPECT_NE(all.find("'sim::Mirror::left_', 'sim::Mirror::right_'"),
            std::string::npos);
  // Blend: one writer reached from differently-targeted dispatches.
  EXPECT_NE(all.find("src/sim/blend.cpp:10: error: [conf-unproven]"),
            std::string::npos);
  EXPECT_NE(all.find("'sim::Blend::alpha_', 'sim::Blend::beta_'"),
            std::string::npos);
  // Reporter: claimed pinned but reachable from the storm roots, with the
  // reach chain in the message.
  EXPECT_NE(all.find("src/sim/report.cpp:5: error: [conf-unproven]"),
            std::string::npos);
  EXPECT_NE(all.find("'run_storm' -> 'flush'"), std::string::npos);
  // Ghost: the stale claim is anchored at its line in the claims file.
  EXPECT_NE(all.find("confined_seeded.txt:10: error: [conf-stale-claim]"),
            std::string::npos);
}

TEST(AnalyzeConfinementTest, JobCountNeverChangesConfinementOutput) {
  const std::string a = testing::TempDir() + "analyze_conf_jobs1.sarif";
  const std::string b = testing::TempDir() + "analyze_conf_jobs8.sarif";
  const std::string args =
      conf_args() + " --confined " + conf_fixtures() + "/confined_seeded.txt";
  const RunResult one = run_analyze(args + " --jobs 1 --sarif --output " + a);
  const RunResult eight =
      run_analyze(args + " --jobs 8 --sarif --output " + b);
  EXPECT_EQ(one.exit_code, eight.exit_code);
  EXPECT_EQ(read_file(a), read_file(b));
}

// Same invocation scripts/run_analyze.sh uses: every `verified` claim in
// the committed annotation file must prove against the real tree, with
// no stale claims.
TEST(AnalyzeConfinementTest, RepoTreeConfinementProofsHold) {
  const std::string report = testing::TempDir() + "analyze_conf_repo.txt";
  const RunResult result = run_command(
      std::string("cd ") + FLOTILLA_REPO_ROOT + " && " +
      FLOTILLA_ANALYZE_BIN +
      " --baseline analyze/baseline.txt --confined analyze/confined.txt"
      " --confinement-report " +
      report + " 2>/dev/null");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
  const std::string text = read_file(report);
  EXPECT_NE(text.find(" 0 failed\n"), std::string::npos);
  EXPECT_EQ(text.find("\tfailed\t"), std::string::npos);
}

}  // namespace
