// Tests for gang (co-)scheduling: atomic placement and synchronized start
// of tightly coupled task groups (§2).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "flux/flux_backend.hpp"
#include "util/strfmt.hpp"

namespace flotilla::core {
namespace {

struct GangFixture {
  Session session{platform::frontier_spec(), 8, 42};
  PilotManager pmgr{session};
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr;

  explicit GangFixture(int partitions = 1,
                       std::vector<BackendSpec> backends = {}) {
    PilotDescription desc;
    desc.nodes = 8;
    desc.backends = backends.empty()
                        ? std::vector<BackendSpec>{{.type = "flux",
                                                    .partitions = partitions}}
                        : std::move(backends);
    pilot = &pmgr.submit(std::move(desc));
    pilot->launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    tmgr = std::make_unique<TaskManager>(session, pilot->agent());
  }

  std::vector<std::string> submit_gang(const std::string& tag, int members,
                                       std::int64_t cores,
                                       double duration = 60.0) {
    std::vector<std::string> uids;
    for (int i = 0; i < members; ++i) {
      TaskDescription desc;
      desc.name = util::cat(tag, ".", i);
      desc.demand.cores = cores;
      desc.duration = duration;
      desc.gang = tag;
      desc.gang_size = members;
      uids.push_back(tmgr->submit(std::move(desc)));
    }
    return uids;
  }
};

TEST(GangScheduling, MembersStartTogether) {
  GangFixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  const auto uids = fx.submit_gang("ensemble", 6, 56);
  fx.session.run();
  std::vector<sim::Time> starts;
  for (const auto& uid : uids) {
    sim::Time t = 0;
    ASSERT_TRUE(fx.tmgr->task(uid).state_time(TaskState::kRunning, t));
    EXPECT_EQ(fx.tmgr->task(uid).state(), TaskState::kDone);
    starts.push_back(t);
  }
  // Synchronized start: every member begins at the same instant (after the
  // shared gang wireup).
  for (const auto t : starts) EXPECT_DOUBLE_EQ(t, starts.front());
}

TEST(GangScheduling, PlacementIsAtomicUnderContention) {
  GangFixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  // A hog takes 5 of 8 nodes for 200 s; a 6-node gang cannot partially
  // start — it must wait until the hog ends even though 3 nodes are free.
  TaskDescription hog;
  hog.demand.cores = 5 * 56;
  hog.demand.cores_per_node = 56;
  hog.duration = 200.0;
  fx.tmgr->submit(std::move(hog));
  fx.session.run(fx.session.now() + 50.0);
  const auto uids = fx.submit_gang("wave", 6, 56);
  fx.session.run();
  for (const auto& uid : uids) {
    sim::Time t = 0;
    ASSERT_TRUE(fx.tmgr->task(uid).state_time(TaskState::kRunning, t));
    EXPECT_GT(t, 200.0);  // no member started on the 3 free nodes early
  }
}

TEST(GangScheduling, BackfillFlowsAroundABlockedGang) {
  GangFixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  TaskDescription hog;
  hog.demand.cores = 5 * 56;
  hog.demand.cores_per_node = 56;
  hog.duration = 300.0;
  fx.tmgr->submit(std::move(hog));
  fx.session.run(fx.session.now() + 30.0);
  fx.submit_gang("blocked", 6, 56, 60.0);
  TaskDescription small;
  small.demand.cores = 1;
  small.duration = 10.0;
  const auto small_uid = fx.tmgr->submit(std::move(small));
  fx.session.run();
  sim::Time small_start = 0;
  ASSERT_TRUE(
      fx.tmgr->task(small_uid).state_time(TaskState::kRunning, small_start));
  EXPECT_LT(small_start, 100.0);  // backfilled around the waiting gang
}

TEST(GangScheduling, AllMembersLandOnOneInstance) {
  GangFixture fx(/*partitions=*/4);
  std::map<std::string, int> on_backend;
  fx.tmgr->on_complete([](const Task&) {});
  // 2-node gang of 2 members fits one 2-node partition only as a unit.
  const auto uids = fx.submit_gang("pair", 2, 56, 30.0);
  fx.session.run();
  for (const auto& uid : uids) {
    EXPECT_EQ(fx.tmgr->task(uid).state(), TaskState::kDone);
  }
  auto* fluxb =
      dynamic_cast<flux::FluxBackend*>(fx.pilot->agent().backend("flux"));
  ASSERT_NE(fluxb, nullptr);
  int instances_used = 0;
  for (int i = 0; i < fluxb->partitions(); ++i) {
    if (fluxb->instance(i).jobs_completed() > 0) ++instances_used;
  }
  EXPECT_EQ(instances_used, 1);
}

TEST(GangScheduling, GangWithoutCoschedulingBackendFails) {
  GangFixture fx(1, {{"dragon"}});
  TaskState final_state = TaskState::kNew;
  std::string error;
  fx.tmgr->on_complete([&](const Task& task) {
    final_state = task.state();
    error = task.error();
  });
  TaskDescription member;
  member.demand.cores = 1;
  member.gang = "g";
  member.gang_size = 1;
  fx.tmgr->submit(std::move(member));
  fx.session.run();
  EXPECT_EQ(final_state, TaskState::kFailed);
  EXPECT_NE(error.find("co-scheduling"), std::string::npos);
}

TEST(GangScheduling, IncompleteGangWaitsForAllMembers) {
  GangFixture fx;
  std::vector<sim::Time> starts;
  fx.pilot->agent().on_task_start(
      [&](const Task&) { starts.push_back(fx.session.now()); });
  fx.tmgr->on_complete([](const Task&) {});
  // Submit 2 of 3 members now; the third 100 s later.
  for (int i = 0; i < 2; ++i) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 10.0;
    desc.gang = "trio";
    desc.gang_size = 3;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.engine().in(100.0, [&] {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 10.0;
    desc.gang = "trio";
    desc.gang_size = 3;
    fx.tmgr->submit(std::move(desc));
  });
  fx.session.run();
  ASSERT_EQ(starts.size(), 3u);
  // Nothing started before the last member arrived at t=100+pilot setup.
  for (const auto t : starts) EXPECT_GT(t, 100.0);
}

}  // namespace
}  // namespace flotilla::core
