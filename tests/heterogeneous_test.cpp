// Tests for the heterogeneous mixture generator.
#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"
#include "workloads/heterogeneous.hpp"

namespace flotilla::workloads {
namespace {

TEST(Heterogeneous, MixtureFrequenciesFollowWeights) {
  const auto tasks = heterogeneous_tasks(4000, default_mixture(), 7);
  std::map<std::string, int> counts;
  for (const auto& task : tasks) ++counts[task.stage];
  EXPECT_NEAR(counts["inference"], 2800, 200);  // 70%
  EXPECT_NEAR(counts["analysis"], 800, 150);    // 20%
  EXPECT_NEAR(counts["training"], 320, 100);    // 8%
  EXPECT_NEAR(counts["mpi_sim"], 80, 50);       // 2%
}

TEST(Heterogeneous, ClassShapesPropagate) {
  const auto tasks = heterogeneous_tasks(500, default_mixture(), 7);
  for (const auto& task : tasks) {
    if (task.stage == "mpi_sim") {
      EXPECT_EQ(task.demand.cores, 112);
      EXPECT_EQ(task.demand.cores_per_node, 56);
    }
    if (task.stage == "inference") {
      EXPECT_EQ(task.modality, platform::TaskModality::kFunction);
      EXPECT_EQ(task.demand.cores, 1);
    }
    if (task.stage == "training") {
      EXPECT_EQ(task.demand.gpus, 2);
    }
  }
}

TEST(Heterogeneous, DurationsJitterAroundClassMeans) {
  const auto tasks = heterogeneous_tasks(2000, default_mixture(), 7);
  double sum = 0;
  int n = 0;
  double lo = 1e18, hi = 0;
  for (const auto& task : tasks) {
    if (task.stage != "inference") continue;
    sum += task.duration;
    lo = std::min(lo, task.duration);
    hi = std::max(hi, task.duration);
    ++n;
  }
  ASSERT_GT(n, 100);
  EXPECT_NEAR(sum / n, 20.0, 3.0);
  EXPECT_LT(lo, hi - 5.0);  // genuine spread (cv 0.4)
}

TEST(Heterogeneous, DeterministicPerSeed) {
  const auto a = heterogeneous_tasks(100, default_mixture(), 11);
  const auto b = heterogeneous_tasks(100, default_mixture(), 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stage, b[i].stage);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
  }
}

TEST(Heterogeneous, RejectsDegenerateMixtures) {
  EXPECT_THROW(heterogeneous_tasks(10, {}, 1), util::Error);
  TaskClass negative;
  negative.name = "bad";
  negative.weight = -1.0;
  EXPECT_THROW(heterogeneous_tasks(10, {negative}, 1), util::Error);
  TaskClass zero;
  zero.name = "zero";
  zero.weight = 0.0;
  EXPECT_THROW(heterogeneous_tasks(10, {zero}, 1), util::Error);
}

}  // namespace
}  // namespace flotilla::workloads
