#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/error.hpp"
#include "util/id_registry.hpp"
#include "util/logging.hpp"
#include "util/strfmt.hpp"

namespace flotilla::util {
namespace {

TEST(Strfmt, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("tasks=", 42, " rate=", 1.5), "tasks=42 rate=1.5");
  EXPECT_EQ(cat(), "");
}

TEST(Strfmt, FmtReplacesPlaceholdersInOrder) {
  EXPECT_EQ(fmt("submit {} to {}", "t.1", "flux"), "submit t.1 to flux");
}

TEST(Strfmt, FmtSurplusArgumentsAreAppended) {
  EXPECT_EQ(fmt("x={}", 1, 2), "x=1 2");
}

TEST(Strfmt, FmtSurplusPlaceholdersStayVerbatim) {
  EXPECT_EQ(fmt("a={} b={}", 7), "a=7 b={}");
}

TEST(Config, ParsesPairsAndTrimsWhitespace) {
  const auto config =
      Config::from_pairs({" nodes = 4 ", "backend=flux", "# comment", ""});
  EXPECT_EQ(config.get_int("nodes", -1), 4);
  EXPECT_EQ(config.get_string("backend"), "flux");
  EXPECT_FALSE(config.has("comment"));
}

TEST(Config, ParsesMultilineText) {
  const auto config = Config::from_text("a=1\nb = two\n# note\nc=3.5");
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_string("b"), "two");
  EXPECT_DOUBLE_EQ(config.get_double("c", 0), 3.5);
}

TEST(Config, TypedGettersFallBack) {
  const Config config;
  EXPECT_EQ(config.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 0.5), 0.5);
  EXPECT_TRUE(config.get_bool("missing", true));
  EXPECT_EQ(config.get_string("missing", "x"), "x");
}

TEST(Config, TypedGettersRejectGarbage) {
  const auto config = Config::from_pairs({"n=abc"});
  EXPECT_THROW(config.get_int("n", 0), Error);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  const auto config =
      Config::from_pairs({"a=true", "b=0", "c=YES", "d=off"});
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
}

TEST(Config, SubsetStripsPrefix) {
  const auto config =
      Config::from_pairs({"flux.partitions=4", "flux.nodes=16", "srun.x=1"});
  const auto flux = config.subset("flux");
  EXPECT_EQ(flux.get_int("partitions", 0), 4);
  EXPECT_EQ(flux.get_int("nodes", 0), 16);
  EXPECT_FALSE(flux.has("x"));
}

TEST(Config, MergedWithPrefersOther) {
  const auto base = Config::from_pairs({"a=1", "b=2"});
  const auto over = Config::from_pairs({"b=3", "c=4"});
  const auto merged = base.merged_with(over);
  EXPECT_EQ(merged.get_int("a", 0), 1);
  EXPECT_EQ(merged.get_int("b", 0), 3);
  EXPECT_EQ(merged.get_int("c", 0), 4);
}

TEST(Config, MissingEqualsThrows) {
  EXPECT_THROW(Config::from_pairs({"justakey"}), Error);
}

TEST(IdRegistry, GeneratesSequentialPaddedIds) {
  IdRegistry registry;
  EXPECT_EQ(registry.next("task"), "task.000000");
  EXPECT_EQ(registry.next("task"), "task.000001");
  EXPECT_EQ(registry.next("pilot", 4), "pilot.0000");
  EXPECT_EQ(registry.count("task"), 2u);
  EXPECT_EQ(registry.count("pilot"), 1u);
  EXPECT_EQ(registry.count("other"), 0u);
}

TEST(IdRegistry, ResetClearsCounters) {
  IdRegistry registry;
  registry.next("x");
  registry.reset();
  EXPECT_EQ(registry.next("x"), "x.000000");
}

TEST(Logging, RespectsLevelThreshold) {
  auto sink = std::make_shared<CaptureSink>();
  LogRegistry::instance().set_sink(sink);
  LogRegistry::instance().set_level(LogLevel::kInfo);
  Logger log("test");
  log.debug("hidden");
  log.info("visible ", 1);
  log.error("boom");
  LogRegistry::instance().set_sink(nullptr);

  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[INFO] test: visible 1");
  EXPECT_EQ(lines[1], "[ERROR] test: boom");
}

TEST(Logging, LevelRoundTrip) {
  EXPECT_EQ(log_level_from_string("trace"), LogLevel::kTrace);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::kError);
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
}

TEST(Error, FlotCheckThrowsWithContext) {
  try {
    FLOT_CHECK(1 == 2, "value was ", 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

}  // namespace
}  // namespace flotilla::util
