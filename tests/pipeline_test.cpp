// Tests for the threaded streaming pipeline (dragon/pipeline.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "dragon/pipeline.hpp"
#include "util/error.hpp"

namespace flotilla::dragon {
namespace {

TEST(Pipeline, SingleStagePassesEverythingThrough) {
  Pipeline<int> pipeline;
  std::atomic<long> sum{0};
  pipeline.add_stage("double", 2, [](int x) { return std::optional(2 * x); })
      .set_sink([&](int x) { sum.fetch_add(x); });
  pipeline.start();
  for (int i = 1; i <= 100; ++i) pipeline.feed(i);
  pipeline.finish();
  EXPECT_EQ(sum.load(), 2 * 5050);
  EXPECT_EQ(pipeline.processed("double"), 100u);
  EXPECT_EQ(pipeline.dropped("double"), 0u);
}

TEST(Pipeline, MultiStageChainsTransforms) {
  Pipeline<int> pipeline;
  std::mutex mutex;
  std::multiset<int> out;
  pipeline.add_stage("inc", 2, [](int x) { return std::optional(x + 1); })
      .add_stage("square", 2, [](int x) { return std::optional(x * x); })
      .set_sink([&](int x) {
        std::lock_guard lock(mutex);
        out.insert(x);
      });
  pipeline.start();
  for (int i = 0; i < 10; ++i) pipeline.feed(i);
  pipeline.finish();
  std::multiset<int> expected;
  for (int i = 0; i < 10; ++i) expected.insert((i + 1) * (i + 1));
  EXPECT_EQ(out, expected);
}

TEST(Pipeline, FilterStageDropsItems) {
  Pipeline<int> pipeline;
  std::atomic<int> kept{0};
  pipeline
      .add_stage("odd-only", 2,
                 [](int x) -> std::optional<int> {
                   if (x % 2 == 0) return std::nullopt;
                   return x;
                 })
      .set_sink([&](int) { kept.fetch_add(1); });
  pipeline.start();
  for (int i = 0; i < 1000; ++i) pipeline.feed(i);
  pipeline.finish();
  EXPECT_EQ(kept.load(), 500);
  EXPECT_EQ(pipeline.dropped("odd-only"), 500u);
  EXPECT_EQ(pipeline.processed("odd-only"), 1000u);
}

TEST(Pipeline, SingleWorkerStagePreservesOrder) {
  Pipeline<int> pipeline;
  std::vector<int> out;  // sink called from the single worker: no race
  pipeline.add_stage("identity", 1, [](int x) { return std::optional(x); })
      .set_sink([&](int x) { out.push_back(x); });
  pipeline.start();
  for (int i = 0; i < 2000; ++i) pipeline.feed(i);
  pipeline.finish();
  ASSERT_EQ(out.size(), 2000u);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(Pipeline, BackpressureBlocksProducerNotDropsItems) {
  Pipeline<int> pipeline(/*queue_capacity=*/4);
  std::atomic<int> seen{0};
  pipeline
      .add_stage("slow", 1,
                 [](int x) {
                   std::this_thread::sleep_for(std::chrono::microseconds(50));
                   return std::optional(x);
                 })
      .set_sink([&](int) { seen.fetch_add(1); });
  pipeline.start();
  for (int i = 0; i < 500; ++i) pipeline.feed(i);  // blocks when full
  pipeline.finish();
  EXPECT_EQ(seen.load(), 500);
}

TEST(Pipeline, FinishIsIdempotentAndDtorSafe) {
  auto pipeline = std::make_unique<Pipeline<int>>();
  pipeline->add_stage("s", 1, [](int x) { return std::optional(x); });
  pipeline->start();
  pipeline->feed(1);
  pipeline->finish();
  pipeline->finish();  // no-op
  pipeline.reset();    // dtor after finish: no double join
}

TEST(Pipeline, MisuseThrows) {
  Pipeline<int> pipeline;
  EXPECT_THROW(pipeline.start(), util::Error);  // no stages
  pipeline.add_stage("s", 1, [](int x) { return std::optional(x); });
  EXPECT_THROW(pipeline.feed(1), util::Error);  // not started
  pipeline.start();
  EXPECT_THROW(
      pipeline.add_stage("late", 1, [](int x) { return std::optional(x); }),
      util::Error);
  EXPECT_THROW(pipeline.processed("ghost"), util::Error);
  pipeline.finish();
}

TEST(Pipeline, HighVolumeAccountingIsExact) {
  Pipeline<int> pipeline(64);
  std::atomic<long> sum{0};
  pipeline.add_stage("a", 3, [](int x) { return std::optional(x); })
      .add_stage("b", 3, [](int x) { return std::optional(x); })
      .add_stage("c", 2, [](int x) { return std::optional(x); })
      .set_sink([&](int x) { sum.fetch_add(x); });
  pipeline.start();
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) pipeline.feed(i);
  pipeline.finish();
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
  EXPECT_EQ(pipeline.processed("a"), static_cast<std::uint64_t>(n));
  EXPECT_EQ(pipeline.processed("c"), static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace flotilla::dragon
