// Property test: random DAG campaigns always respect dependency order and
// always drain.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "sim/random.hpp"
#include "util/strfmt.hpp"

namespace flotilla::core {
namespace {

class WorkflowDagProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WorkflowDagProperty, RandomDagRespectsTopologicalOrder) {
  sim::RngStream rng(GetParam());
  Session session(platform::frontier_spec(), 8, GetParam());
  PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8, .backends = {{.type = "flux", .partitions = 2}}});
  pilot.launch([](bool ok, const std::string&) { ASSERT_TRUE(ok); });
  session.run(240.0);
  TaskManager tmgr(session, pilot.agent());
  Workflow workflow(tmgr);

  // Build a random DAG: each stage depends on a random subset of earlier
  // stages (guaranteeing acyclicity by construction).
  const int n_stages = static_cast<int>(rng.uniform_int(4, 14));
  std::map<std::string, std::vector<std::string>> deps_of;
  for (int s = 0; s < n_stages; ++s) {
    const auto name = util::cat("stage.", s);
    std::vector<std::string> deps;
    for (int d = 0; d < s; ++d) {
      if (rng.bernoulli(0.3)) deps.push_back(util::cat("stage.", d));
    }
    deps_of[name] = deps;
    std::vector<TaskDescription> tasks;
    const auto n_tasks = rng.uniform_int(1, 5);
    for (int t = 0; t < n_tasks; ++t) {
      TaskDescription desc;
      desc.demand.cores = rng.uniform_int(1, 8);
      desc.duration = rng.uniform(1.0, 30.0);
      if (rng.bernoulli(0.1)) {
        desc.fail_probability = 0.5;
        desc.max_retries = 5;
      }
      tasks.push_back(std::move(desc));
    }
    workflow.add_stage(name, std::move(tasks), deps);
  }

  std::map<std::string, sim::Time> completed_at;
  workflow.on_stage_complete([&](const std::string& stage) {
    completed_at[stage] = session.now();
  });
  bool drained = false;
  workflow.on_drained([&] { drained = true; });
  workflow.start();
  session.run();

  EXPECT_TRUE(drained);
  ASSERT_EQ(completed_at.size(), static_cast<std::size_t>(n_stages));
  // Every stage completed no earlier than all of its dependencies.
  for (const auto& [stage, deps] : deps_of) {
    for (const auto& dep : deps) {
      EXPECT_LE(completed_at.at(dep), completed_at.at(stage))
          << stage << " finished before its dependency " << dep;
    }
  }
  // All resources returned.
  EXPECT_EQ(session.cluster().free_cores({0, 8}), 8 * 56);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowDagProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace flotilla::core
