#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace flotilla::sim {
namespace {

TEST(Engine, StartsAtTimeZeroEmpty) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.empty());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(5.0, [&] { order.push_back(2); });
  engine.at(1.0, [&] { order.push_back(1); });
  engine.at(9.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, TiesResolveInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    engine.at(2.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, InSchedulesRelativeToNow) {
  Engine engine;
  Time fired = -1.0;
  engine.at(3.0, [&] { engine.in(2.0, [&] { fired = engine.now(); }); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired, 5.0);
}

TEST(Engine, PastTimesClampToNow) {
  Engine engine;
  Time fired = -1.0;
  engine.at(4.0, [&] { engine.at(1.0, [&] { fired = engine.now(); }); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired, 4.0);
}

TEST(Engine, CancelPreventsDelivery) {
  Engine engine;
  bool fired = false;
  const auto id = engine.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  int count = 0;
  engine.at(1.0, [&] { ++count; });
  engine.at(2.0, [&] { ++count; });
  engine.at(3.0, [&] { ++count; });
  const auto processed = engine.run(2.0);
  EXPECT_EQ(processed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, StopAbortsRunLoop) {
  Engine engine;
  int count = 0;
  engine.at(1.0, [&] {
    ++count;
    engine.stop();
  });
  engine.at(2.0, [&] { ++count; });
  engine.run();
  EXPECT_EQ(count, 1);
  engine.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, NextEventTimeSkipsTombstones) {
  Engine engine;
  const auto id = engine.at(1.0, [] {});
  engine.at(5.0, [] {});
  engine.cancel(id);
  EXPECT_DOUBLE_EQ(engine.next_event_time(), 5.0);
}

TEST(Engine, NextEventTimeEmptyIsInfinite) {
  Engine engine;
  EXPECT_EQ(engine.next_event_time(), kInfiniteTime);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.in(1.0, recurse);
  };
  engine.in(1.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(Engine, ProcessedCounterAccumulates) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.at(i, [] {});
  engine.run();
  EXPECT_EQ(engine.processed(), 7u);
}

TEST(Engine, RejectsEmptyCallback) {
  Engine engine;
  EXPECT_THROW(engine.at(1.0, Engine::Callback{}), util::Error);
}

TEST(Engine, CancelOfAlreadyFiredEventReturnsFalse) {
  Engine engine;
  bool fired = false;
  const auto id = engine.at(1.0, [&] { fired = true; });
  engine.run();
  ASSERT_TRUE(fired);
  EXPECT_FALSE(engine.cancel(id));  // fired events are not cancellable
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  Time fired = -1.0;
  std::uint64_t fired_seq = 0, later_seq = 0;
  engine.at(4.0, [&] {
    engine.in(-2.5, [&] {
      fired = engine.now();
      fired_seq = engine.processed();
    });
    // A same-time event scheduled after it must also fire after it.
    engine.in(0.0, [&] { later_seq = engine.processed(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired, 4.0);  // clamped, not scheduled in the past
  EXPECT_LT(fired_seq, later_seq);
}

TEST(Engine, MixedAtAndInTiesFireInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(1.0, [&] {
    engine.at(3.0, [&] { order.push_back(0); });
    engine.in(2.0, [&] { order.push_back(1); });
    engine.at(3.0, [&] { order.push_back(2); });
    engine.in(2.0, [&] { order.push_back(3); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, PostEventHookFiresAfterEveryProcessedEvent) {
  Engine engine;
  std::vector<Time> hook_times;
  int events = 0;
  engine.set_post_event_hook([&] { hook_times.push_back(engine.now()); });
  engine.at(1.0, [&] { ++events; });
  const auto cancelled = engine.at(2.0, [&] { ++events; });
  engine.at(3.0, [&] { ++events; });
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(events, 2);
  // Once per *processed* event, at that event's time; never for tombstones.
  EXPECT_EQ(hook_times, (std::vector<Time>{1.0, 3.0}));
  engine.set_post_event_hook({});  // clearing is accepted
  engine.at(4.0, [&] { ++events; });
  engine.run();
  EXPECT_EQ(events, 3);
  EXPECT_EQ(hook_times.size(), 2u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace_of = [] {
    Engine engine;
    std::vector<double> times;
    for (int i = 0; i < 50; ++i) {
      engine.at(static_cast<double>((i * 37) % 11), [&times, &engine] {
        times.push_back(engine.now());
      });
    }
    engine.run();
    return times;
  };
  EXPECT_EQ(trace_of(), trace_of());
}

}  // namespace
}  // namespace flotilla::sim
