#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "flux/flux_backend.hpp"
#include "flux/instance.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sim/stats.hpp"
#include "util/strfmt.hpp"

namespace flotilla::flux {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::frontier_calibration;
using platform::frontier_spec;

platform::LaunchRequest make_task(int i, double duration, std::int64_t cores,
                                  std::int64_t gpus = 0) {
  platform::LaunchRequest req;
  req.id = util::cat("task.", i);
  req.demand.cores = cores;
  req.demand.gpus = gpus;
  req.duration = duration;
  return req;
}

struct Fixture {
  sim::Engine engine;
  Cluster cluster;
  FluxBackend backend;

  Fixture(int nodes, int partitions, sim::Resource* ceiling = nullptr)
      : cluster(frontier_spec(), nodes),
        backend(engine, cluster, NodeRange{0, nodes}, partitions,
                frontier_calibration().flux, 42, ceiling) {
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(120.0);
    EXPECT_TRUE(ready);
  }
};

// -------------------------------------------------------------- instance

TEST(FluxInstance, BootstrapTakesAbout20Seconds) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 16);
  Instance instance("flux.0", engine, cluster, NodeRange{0, 16},
                    frontier_calibration().flux, 7);
  EXPECT_FALSE(instance.ready());
  bool up = false;
  instance.bootstrap([&] { up = true; });
  engine.run();
  EXPECT_TRUE(up);
  EXPECT_TRUE(instance.ready());
  // Fig 7: ~20 s, roughly independent of instance size.
  EXPECT_NEAR(instance.bootstrap_duration(), 20.0, 6.0);
}

TEST(FluxInstance, EventLifecycleIsOrdered) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  Instance instance("flux.0", engine, cluster, NodeRange{0, 1},
                    frontier_calibration().flux, 7);
  std::vector<JobEventKind> kinds;
  instance.on_event(
      [&](const JobEvent& event) { kinds.push_back(event.kind); });
  instance.bootstrap([&] {
    Job job;
    job.id = "task.0";
    job.demand.cores = 4;
    job.duration = 10.0;
    instance.submit(std::move(job));
  });
  engine.run();
  EXPECT_EQ(kinds,
            (std::vector<JobEventKind>{JobEventKind::kSubmit,
                                       JobEventKind::kAlloc,
                                       JobEventKind::kStart,
                                       JobEventKind::kFinish}));
  EXPECT_EQ(instance.jobs_completed(), 1u);
}

TEST(FluxInstance, SingleNodeThroughputIsSpawnLimited) {
  // Fig 5(b): ~28 tasks/s with one instance on one node.
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  Instance instance("flux.0", engine, cluster, NodeRange{0, 1},
                    frontier_calibration().flux, 7);
  sim::RateSeries starts(1.0);
  instance.on_event([&](const JobEvent& event) {
    if (event.kind == JobEventKind::kStart) starts.record(engine.now());
  });
  instance.bootstrap([&] {
    for (int i = 0; i < 2000; ++i) {
      Job job;
      job.id = util::cat("task.", i);
      job.demand.cores = 1;
      instance.submit(std::move(job));
    }
  });
  engine.run();
  EXPECT_EQ(starts.total(), 2000u);
  EXPECT_NEAR(starts.window_rate(), 28.6, 4.0);
}

TEST(FluxInstance, BackfillSkipsBlockedHead) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);  // 56 cores
  Instance instance("flux.0", engine, cluster, NodeRange{0, 1},
                    frontier_calibration().flux, 7);
  std::vector<std::string> started;
  instance.on_event([&](const JobEvent& event) {
    if (event.kind == JobEventKind::kStart) started.push_back(event.job_id);
  });
  instance.bootstrap([&] {
    Job big1;  // takes all but one core
    big1.id = "big.0";
    big1.demand.cores = 55;
    big1.duration = 100.0;
    instance.submit(std::move(big1));
    Job big2;  // head of queue, cannot fit while big1 runs
    big2.id = "big.1";
    big2.demand.cores = 56;
    big2.duration = 10.0;
    instance.submit(std::move(big2));
    Job small;  // must be backfilled around big2
    small.id = "small.0";
    small.demand.cores = 1;
    small.duration = 5.0;
    instance.submit(std::move(small));
  });
  engine.run();
  ASSERT_EQ(started.size(), 3u);
  EXPECT_EQ(started[0], "big.0");
  EXPECT_EQ(started[1], "small.0");  // backfilled while big.0 runs
  EXPECT_EQ(started[2], "big.1");
}

TEST(FluxInstance, SchedulingIsEventDrivenNotPolled) {
  // When the node frees at t~100, the waiting job must start within the
  // event-handling latency (milliseconds), not a polling interval.
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  Instance instance("flux.0", engine, cluster, NodeRange{0, 1},
                    frontier_calibration().flux, 7);
  std::vector<sim::Time> starts;
  sim::Time finish_time = 0.0;
  instance.on_event([&](const JobEvent& event) {
    if (event.kind == JobEventKind::kStart) starts.push_back(engine.now());
    if (event.kind == JobEventKind::kFinish && event.job_id == "a") {
      finish_time = engine.now();
    }
  });
  instance.bootstrap([&] {
    Job a;
    a.id = "a";
    a.demand.cores = 56;
    a.duration = 100.0;
    instance.submit(std::move(a));
    Job b;
    b.id = "b";
    b.demand.cores = 56;
    b.duration = 1.0;
    instance.submit(std::move(b));
  });
  engine.run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GT(finish_time, 100.0);
  EXPECT_LT(starts[1] - finish_time, 0.5);  // event-driven, sub-second
}

TEST(FluxInstance, CrashRaisesExceptionsAndFreesResources) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  Instance instance("flux.0", engine, cluster, NodeRange{0, 2},
                    frontier_calibration().flux, 7);
  int exceptions = 0;
  instance.on_event([&](const JobEvent& event) {
    if (event.kind == JobEventKind::kException && !event.job_id.empty()) {
      ++exceptions;
      EXPECT_FALSE(event.success);
    }
  });
  instance.bootstrap([&] {
    for (int i = 0; i < 4; ++i) {
      Job job;
      job.id = util::cat("task.", i);
      job.demand.cores = 56;  // two run, two queue
      job.duration = 1000.0;
      instance.submit(std::move(job));
    }
  });
  engine.run(60.0);
  EXPECT_EQ(instance.running_jobs(), 2u);
  instance.crash("power lost");
  engine.run();
  EXPECT_FALSE(instance.healthy());
  EXPECT_EQ(exceptions, 4);
  // All resources released for failover reuse.
  EXPECT_EQ(cluster.free_cores(NodeRange{0, 2}), 112);
}

// --------------------------------------------------------------- backend

TEST(FluxBackend, ThroughputScalesWithNodeCount) {
  // Fig 5(b) shape: single-instance throughput grows with node count.
  auto rate_at = [](int nodes) {
    Fixture fx(nodes, 1);
    sim::RateSeries starts(1.0);
    fx.backend.on_task_start(
        [&](const std::string&) { starts.record(fx.engine.now()); });
    fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
    const int n = 3000;
    for (int i = 0; i < n; ++i) fx.backend.submit(make_task(i, 0.0, 1));
    fx.engine.run();
    EXPECT_EQ(starts.total(), static_cast<std::uint64_t>(n));
    return starts.window_rate();
  };
  const double r1 = rate_at(1);
  const double r4 = rate_at(4);
  const double r16 = rate_at(16);
  EXPECT_NEAR(r1, 28.6, 4.0);   // paper: ~28 tasks/s at one node
  EXPECT_NEAR(r4, 56.0, 10.0);  // paper (Fig 6): ~56 tasks/s at 4 nodes
  EXPECT_GT(r4, 1.6 * r1);
  EXPECT_GT(r16, 1.5 * r4);
}

TEST(FluxBackend, MultipleInstancesIncreaseThroughput) {
  // Fig 6 shape: at fixed node count, more instances -> more launch lanes.
  auto rate_with = [](int nodes, int partitions) {
    Fixture fx(nodes, partitions);
    sim::RateSeries starts(1.0);
    fx.backend.on_task_start(
        [&](const std::string&) { starts.record(fx.engine.now()); });
    fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
    const int n = 4000;
    for (int i = 0; i < n; ++i) fx.backend.submit(make_task(i, 0.0, 1));
    fx.engine.run();
    return starts.window_rate();
  };
  const double one = rate_with(4, 1);
  const double four = rate_with(4, 4);
  EXPECT_GT(four, 1.5 * one);
}

TEST(FluxBackend, RoundRobinSpreadsTasksAcrossInstances) {
  Fixture fx(4, 4);
  fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
  for (int i = 0; i < 400; ++i) fx.backend.submit(make_task(i, 0.0, 1));
  fx.engine.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(fx.backend.instance(i).jobs_completed()),
                100.0, 1.0);
  }
}

TEST(FluxBackend, MultiNodeTaskRoutedToFittingInstance) {
  Fixture fx(8, 4);  // partitions of 2 nodes / 112 cores each
  int ok = 0;
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome& outcome) { ok += outcome.success; });
  auto req = make_task(0, 10.0, 112);
  req.demand.cores_per_node = 56;
  fx.backend.submit(req);
  fx.engine.run();
  EXPECT_EQ(ok, 1);
}

TEST(FluxBackend, OversizedTaskFailsCleanly) {
  Fixture fx(4, 4);  // partitions of 1 node / 56 cores
  platform::LaunchOutcome last;
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome& outcome) { last = outcome; });
  fx.backend.submit(make_task(0, 10.0, 300));
  fx.engine.run();
  EXPECT_FALSE(last.success);
  EXPECT_NE(last.error.find("no healthy instance"), std::string::npos);
  EXPECT_EQ(fx.backend.inflight(), 0u);
}

TEST(FluxBackend, InstanceCrashFailsItsTasksOnly) {
  Fixture fx(4, 2);
  int ok = 0, failed = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  for (int i = 0; i < 8; ++i) fx.backend.submit(make_task(i, 500.0, 1));
  fx.engine.run(200.0);
  fx.backend.crash_instance(0, "node failure");
  fx.engine.run();
  EXPECT_TRUE(fx.backend.healthy());  // one instance survives
  EXPECT_EQ(ok + failed, 8);
  EXPECT_EQ(failed, 4);  // round-robin put half on the dead instance
  // New work continues on the surviving instance.
  fx.backend.submit(make_task(100, 1.0, 1));
  fx.engine.run();
  EXPECT_EQ(ok, 5);
}

TEST(FluxBackend, BootstrapFailureIsReported) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  FluxBackend backend(engine, cluster, NodeRange{0, 2}, 1,
                      frontier_calibration().flux, 42);
  backend.fail_bootstrap = true;
  bool ok = true;
  std::string error;
  backend.bootstrap([&](bool success, const std::string& e) {
    ok = success;
    error = e;
  });
  engine.run();
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("bootstrap failed"), std::string::npos);
}

TEST(FluxBackend, ConcurrentBootstrapIsNotAdditive) {
  // Fig 7: launching many instances concurrently costs about as much as
  // launching one.
  sim::Engine e1;
  Cluster c1(frontier_spec(), 16);
  FluxBackend one(e1, c1, NodeRange{0, 16}, 1, frontier_calibration().flux,
                  42);
  one.bootstrap([](bool, const std::string&) {});
  e1.run();
  const double t_one = e1.now();

  sim::Engine e16;
  Cluster c16(frontier_spec(), 16);
  FluxBackend many(e16, c16, NodeRange{0, 16}, 16,
                   frontier_calibration().flux, 42);
  many.bootstrap([](bool, const std::string&) {});
  e16.run();
  const double t_many = e16.now();

  EXPECT_LT(t_many, 2.0 * t_one);  // nowhere near 16x
  const auto durations = many.bootstrap_durations();
  EXPECT_EQ(durations.size(), 16u);
  for (const auto d : durations) EXPECT_NEAR(d, 20.0, 8.0);
}

TEST(FluxBackend, InstancesHoldSrunCeilingSlots) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 8);
  sim::Resource ceiling(engine, 112);
  Fixture* unused = nullptr;
  (void)unused;
  FluxBackend backend(engine, cluster, NodeRange{0, 8}, 8,
                      frontier_calibration().flux, 42, &ceiling);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(ceiling.in_use(), 8);
}

TEST(FluxBackend, UtilizationStaysHighUnderDummyLoad) {
  // flux_n: utilization >= 94.5% for configurations up to 64 nodes. Here:
  // 4 nodes, 4 instances, 4 waves of 180 s single-core tasks.
  Fixture fx(4, 4);
  sim::TimeWeighted busy;
  busy.set(fx.engine.now(), 0.0);
  sim::Time first_start = -1.0;
  fx.backend.on_task_start([&](const std::string&) {
    busy.add(fx.engine.now(), 1.0);
    if (first_start < 0) first_start = fx.engine.now();
  });
  fx.backend.on_task_complete([&](const platform::LaunchOutcome&) {
    busy.add(fx.engine.now(), -1.0);
  });
  const int n = 4 * 56 * 4;
  for (int i = 0; i < n; ++i) fx.backend.submit(make_task(i, 180.0, 1));
  fx.engine.run();
  const double makespan = fx.engine.now() - first_start;
  const double util = busy.integral(fx.engine.now()) / (224.0 * makespan);
  EXPECT_GT(util, 0.945);
}

}  // namespace
}  // namespace flotilla::flux
