#include <gtest/gtest.h>

#include "analytics/latency.hpp"
#include "analytics/metrics.hpp"
#include "util/error.hpp"

namespace flotilla::analytics {
namespace {

TEST(RunMetrics, ThroughputFromLaunchSeries) {
  RunMetrics metrics;
  metrics.on_submit(0.0);
  for (int i = 0; i < 10; ++i) {
    metrics.on_launch(0.1 * i, 1, 0);  // 10 launches in bin 0
  }
  for (int i = 0; i < 5; ++i) {
    metrics.on_launch(2.0 + 0.1 * i, 1, 0);  // 5 launches in bin 2
  }
  EXPECT_DOUBLE_EQ(metrics.peak_throughput(), 10.0);
  EXPECT_DOUBLE_EQ(metrics.avg_throughput(), 7.5);  // mean of nonzero bins
  EXPECT_EQ(metrics.launch_series().total(), 15u);
}

TEST(RunMetrics, UtilizationOverLaunchToCompletionSpan) {
  RunMetrics metrics;
  metrics.on_submit(0.0);
  // Two 4-core tasks run [10, 110]; capacity 8 cores -> 100% utilization.
  metrics.on_launch(10.0, 4, 1);
  metrics.on_launch(10.0, 4, 1);
  metrics.on_attempt_end(110.0, 4, 1);
  metrics.on_attempt_end(110.0, 4, 1);
  metrics.on_final(110.0, true);
  metrics.on_final(110.0, true);
  EXPECT_NEAR(metrics.core_utilization(8), 1.0, 1e-9);
  EXPECT_NEAR(metrics.gpu_utilization(2), 1.0, 1e-9);
  EXPECT_NEAR(metrics.core_utilization(16), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.peak_concurrency(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.makespan(), 110.0);
  EXPECT_EQ(metrics.tasks_done(), 2u);
}

TEST(RunMetrics, BootstrapIdleTimeExcludedFromUtilization) {
  RunMetrics metrics;
  metrics.on_submit(0.0);
  // Launch only at t=1000 (long bootstrap); runs 100 s on all 4 cores.
  metrics.on_launch(1000.0, 4, 0);
  metrics.on_attempt_end(1100.0, 4, 0);
  metrics.on_final(1100.0, true);
  EXPECT_NEAR(metrics.core_utilization(4), 1.0, 1e-9);  // not diluted
}

TEST(RunMetrics, RetriedAttemptsCountedPerLaunch) {
  RunMetrics metrics;
  metrics.on_submit(0.0);
  metrics.on_launch(1.0, 2, 0);
  metrics.on_attempt_end(5.0, 2, 0);  // failed attempt
  metrics.on_retry();
  metrics.on_launch(6.0, 2, 0);
  metrics.on_attempt_end(10.0, 2, 0);
  metrics.on_final(10.0, true);
  EXPECT_EQ(metrics.launch_series().total(), 2u);
  EXPECT_EQ(metrics.tasks_retried(), 1u);
  EXPECT_EQ(metrics.tasks_done(), 1u);
  EXPECT_EQ(metrics.tasks_failed(), 0u);
}

TEST(RunMetrics, NeverLaunchedFailureCountsWithoutBusyAccounting) {
  RunMetrics metrics;
  metrics.on_submit(0.0);
  metrics.on_final(3.0, false);
  EXPECT_EQ(metrics.tasks_failed(), 1u);
  EXPECT_DOUBLE_EQ(metrics.core_utilization(4), 0.0);
}

TEST(RunMetrics, EmptyMetricsAreZero) {
  RunMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.peak_throughput(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.core_utilization(100), 0.0);
  EXPECT_DOUBLE_EQ(metrics.makespan(), 0.0);
}

TEST(LatencyHistogram, PercentilesOnUniformSamples) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.record(i * 0.001);  // 1ms..1s
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_NEAR(hist.mean(), 0.5005, 1e-6);
  EXPECT_NEAR(hist.percentile(0.5), 0.5, 0.05);   // ~2.3% bucket width
  EXPECT_NEAR(hist.percentile(0.99), 0.99, 0.08);
  EXPECT_NEAR(hist.percentile(0.0), 0.001, 0.001);
  EXPECT_NEAR(hist.percentile(1.0), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(hist.min(), 0.001);
  EXPECT_DOUBLE_EQ(hist.max(), 1.0);
}

TEST(LatencyHistogram, BimodalDistribution) {
  LatencyHistogram hist;
  for (int i = 0; i < 900; ++i) hist.record(0.01);
  for (int i = 0; i < 100; ++i) hist.record(10.0);
  EXPECT_NEAR(hist.percentile(0.5), 0.01, 0.003);
  EXPECT_NEAR(hist.percentile(0.95), 10.0, 1.5);
}

TEST(LatencyHistogram, EmptyAndEdgeBehaviour) {
  LatencyHistogram hist;
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  hist.record(0.0);  // below the bucket floor: clamps to bucket 0
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);  // clamped to min sample
  EXPECT_THROW(hist.percentile(1.5), util::Error);
  EXPECT_THROW(hist.record(-1.0), util::Error);
}

TEST(LatencyHistogram, ExtremeValuesClampToRange) {
  LatencyHistogram hist;
  hist.record(1e-9);  // below floor
  hist.record(1e9);   // above ceiling bucket
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.max(), 1e9);
  EXPECT_LE(hist.percentile(0.25), 1e-5 * 1.2);
}

}  // namespace
}  // namespace flotilla::analytics
