// Golden regression: a fixed scenario's metrics are pinned exactly.
//
// The DES is deterministic (seeded streams, tie-breaking by insertion
// order), so these values change only when the model changes. A failure
// here is a behavioural diff: inspect it, and update the goldens only if
// the change is intended (and note it in EXPERIMENTS.md if it moves any
// paper-facing number).
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>

#include "core/flotilla.hpp"

namespace flotilla::core {
namespace {

std::string fingerprint(const std::string& backend) {
  Session session(platform::frontier_spec(), 4, 12345);
  PilotManager pmgr(session);
  PilotDescription desc;
  desc.nodes = 4;
  if (backend == "flux") {
    desc.backends = {{.type = "flux", .partitions = 2}};
  } else if (backend == "hybrid") {
    desc.backends = {{.type = "flux", .partitions = 1, .nodes = 2},
                     {.type = "dragon", .nodes = 2}};
  } else {
    desc.backends = {{backend}};
  }
  auto& pilot = pmgr.submit(std::move(desc));
  pilot.launch([](bool ok, const std::string&) { ASSERT_TRUE(ok); });
  session.run(240.0);
  TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const Task&) {});
  for (int i = 0; i < 150; ++i) {
    TaskDescription task;
    task.demand.cores = 1 + (i % 4);
    task.duration = 15.0 + (i % 7);
    task.fail_probability = 0.05;
    task.max_retries = 2;
    tmgr.submit(std::move(task));
  }
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << metrics.tasks_done() << '/'
     << metrics.tasks_failed() << '/' << metrics.tasks_retried() << ' '
     << metrics.makespan() << ' '
     << metrics.core_utilization(pilot.total_cores()) << ' '
     << metrics.peak_concurrency();
  return os.str();
}

TEST(Golden, SrunScenarioPinned) {
  EXPECT_EQ(fingerprint("srun"), "150/0/7 69.274 0.454 93.000");
}

TEST(Golden, FluxScenarioPinned) {
  EXPECT_EQ(fingerprint("flux"), "150/0/6 53.545 0.585 96.000");
}

TEST(Golden, DragonScenarioPinned) {
  EXPECT_EQ(fingerprint("dragon"), "150/0/10 61.814 0.517 91.000");
}

TEST(Golden, PrrteScenarioPinned) {
  EXPECT_EQ(fingerprint("prrte"), "150/0/12 59.059 0.545 91.000");
}

TEST(Golden, HybridScenarioPinned) {
  EXPECT_EQ(fingerprint("hybrid"), "150/0/8 94.378 0.334 48.000");
}

}  // namespace
}  // namespace flotilla::core
