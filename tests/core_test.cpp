#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "util/error.hpp"

namespace flotilla::core {
namespace {

using platform::TaskModality;
using platform::frontier_spec;

// ------------------------------------------------------------------- Task

TEST(TaskStateMachine, HappyPathTransitions) {
  Task task("task.0", {});
  EXPECT_EQ(task.state(), TaskState::kNew);
  task.advance(TaskState::kTmgrScheduling, 1.0);
  task.advance(TaskState::kAgentScheduling, 2.0);
  task.advance(TaskState::kExecutorPending, 3.0);
  task.advance(TaskState::kRunning, 4.0);
  task.advance(TaskState::kDone, 5.0);
  EXPECT_TRUE(is_final(task.state()));
  sim::Time t = 0;
  ASSERT_TRUE(task.state_time(TaskState::kRunning, t));
  EXPECT_DOUBLE_EQ(t, 4.0);
  EXPECT_FALSE(task.state_time(TaskState::kFailed, t));
}

TEST(TaskStateMachine, RetryEdgeLoopsToAgentScheduling) {
  Task task("task.0", {});
  task.advance(TaskState::kTmgrScheduling, 1.0);
  task.advance(TaskState::kAgentScheduling, 2.0);
  task.advance(TaskState::kExecutorPending, 3.0);
  task.advance(TaskState::kRunning, 4.0);
  task.advance(TaskState::kAgentScheduling, 5.0);  // retry
  task.advance(TaskState::kExecutorPending, 6.0);
  task.advance(TaskState::kRunning, 7.0);
  task.advance(TaskState::kDone, 8.0);
  // First entry times are kept.
  sim::Time t = 0;
  ASSERT_TRUE(task.state_time(TaskState::kRunning, t));
  EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(TaskStateMachine, IllegalTransitionsThrow) {
  Task task("task.0", {});
  EXPECT_THROW(task.advance(TaskState::kRunning, 1.0), util::Error);
  task.advance(TaskState::kTmgrScheduling, 1.0);
  EXPECT_THROW(task.advance(TaskState::kRunning, 2.0), util::Error);
  task.advance(TaskState::kCanceled, 3.0);
  EXPECT_THROW(task.advance(TaskState::kDone, 4.0), util::Error);
}

TEST(TaskStateMachine, FinalStatesAreTerminal) {
  EXPECT_TRUE(is_final(TaskState::kDone));
  EXPECT_TRUE(is_final(TaskState::kFailed));
  EXPECT_TRUE(is_final(TaskState::kCanceled));
  EXPECT_FALSE(is_final(TaskState::kRunning));
}

// ------------------------------------------------------------- end-to-end

struct PilotFixture {
  Session session;
  PilotManager pmgr;
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr;

  explicit PilotFixture(PilotDescription desc, int cluster_nodes = 0)
      : session(frontier_spec(),
                cluster_nodes ? cluster_nodes : desc.nodes, 42),
        pmgr(session) {
    pilot = &pmgr.submit(std::move(desc));
    bool ok = false;
    pilot->launch([&](bool success, const std::string&) { ok = success; });
    session.run(240.0);
    EXPECT_TRUE(ok);
    EXPECT_EQ(pilot->state(), PilotState::kActive);
    tmgr = std::make_unique<TaskManager>(session, pilot->agent());
  }
};

TaskDescription null_task(std::int64_t cores = 1) {
  TaskDescription desc;
  desc.demand.cores = cores;
  return desc;
}

TEST(Pilot, LaunchesWithFluxBackend) {
  PilotFixture fx({.nodes = 4, .backends = {{"flux", 2}}});
  EXPECT_EQ(fx.pilot->allocation().count, 4);
  EXPECT_EQ(fx.pilot->total_cores(), 224);
  EXPECT_EQ(fx.pilot->agent().backend_names(),
            (std::vector<std::string>{"flux"}));
}

TEST(Pilot, SplitsNodesAcrossBackends) {
  PilotFixture fx({.nodes = 8,
                   .backends = {{.type = "flux", .partitions = 2},
                                {.type = "dragon"}}});
  auto* fluxb = dynamic_cast<flux::FluxBackend*>(
      fx.pilot->agent().backend("flux"));
  ASSERT_NE(fluxb, nullptr);
  EXPECT_EQ(fluxb->partitions(), 2);
  EXPECT_EQ(fluxb->instance(0).partition().count, 2);  // 4 nodes / 2 parts
  auto* dragonb = fx.pilot->agent().backend("dragon");
  ASSERT_NE(dragonb, nullptr);
  EXPECT_TRUE(dragonb->healthy());
}

TEST(Pilot, ExplicitNodeCountsHonored) {
  PilotFixture fx({.nodes = 8,
                   .backends = {{.type = "flux", .partitions = 1, .nodes = 6},
                                {.type = "dragon", .nodes = 2}}});
  auto* fluxb = dynamic_cast<flux::FluxBackend*>(
      fx.pilot->agent().backend("flux"));
  ASSERT_NE(fluxb, nullptr);
  EXPECT_EQ(fluxb->instance(0).partition().count, 6);
}

TEST(Pilot, OverSubscribedBackendNodesThrow) {
  Session session(frontier_spec(), 4, 42);
  PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 4, .backends = {{.type = "flux", .partitions = 1,
                                 .nodes = 8}}});
  EXPECT_THROW(pilot.launch([](bool, const std::string&) {}), util::Error);
}

TEST(PilotManager, AllocatesDisjointRanges) {
  Session session(frontier_spec(), 8, 42);
  PilotManager pmgr(session);
  auto& a = pmgr.submit({.nodes = 4, .backends = {{"dragon"}}});
  auto& b = pmgr.submit({.nodes = 4, .backends = {{"dragon"}}});
  EXPECT_EQ(a.allocation().first, 0);
  EXPECT_EQ(b.allocation().first, 4);
  EXPECT_THROW(pmgr.submit({.nodes = 1, .backends = {{"dragon"}}}),
               util::Error);
}

TEST(TaskManager, RunsTasksToCompletionThroughFullLifecycle) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  std::vector<TaskState> finals;
  fx.tmgr->on_complete(
      [&](const Task& task) { finals.push_back(task.state()); });
  std::vector<TaskDescription> batch(50, null_task());
  const auto uids = fx.tmgr->submit(std::move(batch));
  fx.session.run();
  EXPECT_TRUE(fx.tmgr->idle());
  EXPECT_EQ(finals.size(), 50u);
  for (const auto state : finals) EXPECT_EQ(state, TaskState::kDone);
  // Every lifecycle timestamp is present and ordered.
  const auto& task = fx.tmgr->task(uids.front());
  sim::Time t_tmgr = 0, t_sched = 0, t_exec = 0, t_run = 0, t_done = 0;
  ASSERT_TRUE(task.state_time(TaskState::kTmgrScheduling, t_tmgr));
  ASSERT_TRUE(task.state_time(TaskState::kAgentScheduling, t_sched));
  ASSERT_TRUE(task.state_time(TaskState::kExecutorPending, t_exec));
  ASSERT_TRUE(task.state_time(TaskState::kRunning, t_run));
  ASSERT_TRUE(task.state_time(TaskState::kDone, t_done));
  EXPECT_LE(t_tmgr, t_sched);
  EXPECT_LE(t_sched, t_exec);
  EXPECT_LE(t_exec, t_run);
  EXPECT_LE(t_run, t_done);
}

TEST(Agent, RoutesByModalityInHybridPilot) {
  PilotFixture fx({.nodes = 4,
                   .backends = {{.type = "flux", .partitions = 1},
                                {.type = "dragon"}}});
  int done = 0;
  fx.tmgr->on_complete([&](const Task& task) {
    ++done;
    if (task.description().modality == TaskModality::kFunction) {
      EXPECT_EQ(task.backend(), "dragon");
    } else {
      EXPECT_EQ(task.backend(), "flux");
    }
  });
  for (int i = 0; i < 40; ++i) {
    auto desc = null_task();
    if (i % 2) desc.modality = TaskModality::kFunction;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  EXPECT_EQ(done, 40);
}

TEST(Agent, HonorsBackendHint) {
  PilotFixture fx({.nodes = 4,
                   .backends = {{.type = "flux", .partitions = 1},
                                {.type = "dragon"}}});
  std::string backend_used;
  fx.tmgr->on_complete(
      [&](const Task& task) { backend_used = task.backend(); });
  auto desc = null_task();
  desc.backend_hint = "dragon";  // executable, but force dragon
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_EQ(backend_used, "dragon");
}

TEST(Agent, RetriesFailedTasksWithinBudget) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  int done = 0, failed = 0;
  fx.tmgr->on_complete([&](const Task& task) {
    task.state() == TaskState::kDone ? ++done : ++failed;
  });
  for (int i = 0; i < 200; ++i) {
    auto desc = null_task();
    desc.fail_probability = 0.5;
    desc.max_retries = 4;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  EXPECT_EQ(done + failed, 200);
  // P(fail 5 attempts) = 0.5^5 ~ 3%; with retries nearly all succeed.
  EXPECT_GT(done, 180);
  EXPECT_GT(fx.pilot->agent().profiler().metrics().tasks_retried(), 50u);
}

TEST(Agent, ZeroRetryBudgetFailsImmediately) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  int failed = 0;
  fx.tmgr->on_complete([&](const Task& task) {
    if (task.state() == TaskState::kFailed) {
      ++failed;
      EXPECT_FALSE(task.error().empty());
      EXPECT_EQ(task.attempts(), 1);
    }
  });
  auto desc = null_task();
  desc.fail_probability = 1.0;
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_EQ(failed, 1);
}

TEST(Agent, FailsOverToSurvivingBackendAfterCrash) {
  PilotFixture fx({.nodes = 4,
                   .backends = {{.type = "flux", .partitions = 1},
                                {.type = "dragon"}}});
  int done = 0, failed = 0;
  fx.tmgr->on_complete([&](const Task& task) {
    task.state() == TaskState::kDone ? ++done : ++failed;
  });
  // Long-running executables, routed to flux by preference.
  for (int i = 0; i < 30; ++i) {
    auto desc = null_task();
    desc.duration = 1000.0;
    desc.max_retries = 2;
    fx.tmgr->submit(std::move(desc));
  }
  const auto before = fx.session.now();
  fx.session.run(before + 500.0);  // tasks are running on flux
  auto* fluxb = dynamic_cast<flux::FluxBackend*>(
      fx.pilot->agent().backend("flux"));
  ASSERT_NE(fluxb, nullptr);
  fluxb->crash_instance(0, "broker crashed");
  fx.session.run();
  EXPECT_EQ(done + failed, 30);
  EXPECT_EQ(failed, 0);  // every task retried successfully on dragon
  EXPECT_EQ(done, 30);
  // The retried attempts ran on the surviving backend.
  EXPECT_GT(fx.pilot->agent().profiler().metrics().tasks_retried(), 0u);
}

TEST(Agent, TasksFailWhenNoBackendAcceptsModality) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  TaskState final_state = TaskState::kNew;
  std::string error;
  fx.tmgr->on_complete([&](const Task& task) {
    final_state = task.state();
    error = task.error();
  });
  auto desc = null_task();
  desc.modality = TaskModality::kFunction;  // flux rejects functions
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_EQ(final_state, TaskState::kFailed);
  EXPECT_NE(error.find("no healthy backend"), std::string::npos);
}

TEST(Pilot, DegradedBootstrapReportsPartialFailure) {
  // dragon hangs during bootstrap; flux survives -> pilot comes up degraded
  // and still executes executables.
  Session session(frontier_spec(), 4, 42);
  PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 4,
                             .backends = {{.type = "flux", .partitions = 1},
                                          {.type = "dragon"}}});
  // Pre-launch hook: mark dragon to fail. We need the backend built first,
  // so launch then poke before bootstrap completes is racy; instead build
  // via launch and flag through the backend pointer immediately.
  bool ok = false;
  std::string error;
  pilot.launch([&](bool success, const std::string& e) {
    ok = success;
    error = e;
  });
  auto* dragonb =
      dynamic_cast<dragon::DragonBackend*>(pilot.agent().backend("dragon"));
  ASSERT_NE(dragonb, nullptr);
  dragonb->set_fail_bootstrap();
  session.run(240.0);
  EXPECT_TRUE(ok);  // degraded, not dead
  EXPECT_NE(error.find("dragon"), std::string::npos);
  EXPECT_EQ(pilot.state(), PilotState::kActive);
}

TEST(Pilot, AllBackendsFailingFailsThePilot) {
  Session session(frontier_spec(), 4, 42);
  PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 4, .backends = {{"dragon"}}});
  bool ok = true;
  pilot.launch([&](bool success, const std::string&) { ok = success; });
  auto* dragonb =
      dynamic_cast<dragon::DragonBackend*>(pilot.agent().backend("dragon"));
  ASSERT_NE(dragonb, nullptr);
  dragonb->set_fail_bootstrap();
  session.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(pilot.state(), PilotState::kFailed);
}

TEST(Pilot, CancelShutsDownBackends) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  fx.pilot->cancel();
  EXPECT_EQ(fx.pilot->state(), PilotState::kCanceled);
  EXPECT_FALSE(fx.pilot->agent().backend("flux")->healthy());
}

TEST(Profiler, MetricsTrackLaunchesAndUtilization) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}}});
  fx.tmgr->on_complete([](const Task&) {});
  // 2 waves of 112 single-core 100 s tasks on 112 cores.
  for (int i = 0; i < 224; ++i) {
    auto desc = null_task();
    desc.duration = 100.0;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  const auto& metrics = fx.pilot->agent().profiler().metrics();
  EXPECT_EQ(metrics.tasks_done(), 224u);
  EXPECT_EQ(metrics.tasks_failed(), 0u);
  EXPECT_EQ(metrics.launch_series().total(), 224u);
  EXPECT_NEAR(metrics.peak_concurrency(), 112.0, 1.0);
  EXPECT_GT(metrics.core_utilization(fx.pilot->total_cores()), 0.85);
  EXPECT_GT(metrics.makespan(), 200.0);
}

TEST(Profiler, TraceRecordsTaskEventsWhenEnabled) {
  PilotFixture fx({.nodes = 2, .backends = {{"flux", 1}},
                   .trace_tasks = true});
  fx.tmgr->on_complete([](const Task&) {});
  fx.tmgr->submit(null_task());
  fx.session.run();
  EXPECT_FALSE(fx.session.trace().select("task_exec_start").empty());
  EXPECT_FALSE(fx.session.trace().select("task_done").empty());
}

}  // namespace
}  // namespace flotilla::core
