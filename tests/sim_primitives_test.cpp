#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace flotilla::sim {
namespace {

// ---------------------------------------------------------------- Resource

TEST(Resource, GrantsImmediatelyWhenAvailable) {
  Engine engine;
  Resource res(engine, 10);
  bool granted = false;
  res.acquire(4, [&] { granted = true; });
  EXPECT_FALSE(granted);  // grants are delivered via the event queue
  engine.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(res.available(), 6);
}

TEST(Resource, FifoOrderNoSkipping) {
  Engine engine;
  Resource res(engine, 4);
  std::vector<int> order;
  res.acquire(4, [&] { order.push_back(0); });
  res.acquire(3, [&] { order.push_back(1); });
  res.acquire(1, [&] { order.push_back(2); });  // fits, but must wait for #1
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  res.release(4);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(res.available(), 0);
}

TEST(Resource, TryAcquireRespectsQueue) {
  Engine engine;
  Resource res(engine, 4);
  res.acquire(4, [] {});
  res.acquire(2, [] {});  // queued
  engine.run();
  EXPECT_FALSE(res.try_acquire(1));  // waiter ahead
  res.release(4);
  engine.run();
  EXPECT_TRUE(res.try_acquire(2));
  EXPECT_EQ(res.available(), 0);
}

TEST(Resource, CancelWaitUnblocksFollowers) {
  Engine engine;
  Resource res(engine, 4);
  res.acquire(4, [] {});
  const auto big = res.acquire(4, [] { FAIL() << "cancelled waiter fired"; });
  bool small_granted = false;
  res.acquire(1, [&] { small_granted = true; });
  engine.run();
  res.release(1);  // 1 free, head wants 4
  engine.run();
  EXPECT_FALSE(small_granted);
  EXPECT_TRUE(res.cancel_wait(big));
  engine.run();
  EXPECT_TRUE(small_granted);
  EXPECT_FALSE(res.cancel_wait(big));
}

TEST(Resource, OverReleaseThrows) {
  Engine engine;
  Resource res(engine, 2);
  EXPECT_THROW(res.release(1), util::Error);
}

TEST(Resource, AcquireBeyondCapacityThrows) {
  Engine engine;
  Resource res(engine, 2);
  EXPECT_THROW(res.acquire(3, [] {}), util::Error);
}

// ------------------------------------------------------------------ Server

TEST(Server, SerializesWork) {
  Engine engine;
  Server server(engine, 1);
  std::vector<double> done_times;
  for (int i = 0; i < 3; ++i) {
    server.submit(2.0, [&] { done_times.push_back(engine.now()); });
  }
  EXPECT_EQ(server.backlog(), 2u);  // one in service, two queued
  engine.run();
  EXPECT_EQ(done_times, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_EQ(server.completed(), 3u);
  EXPECT_TRUE(server.idle());
}

TEST(Server, ParallelismOverlapsService) {
  Engine engine;
  Server server(engine, 2);
  std::vector<double> done_times;
  for (int i = 0; i < 4; ++i) {
    server.submit(3.0, [&] { done_times.push_back(engine.now()); });
  }
  engine.run();
  EXPECT_EQ(done_times, (std::vector<double>{3.0, 3.0, 6.0, 6.0}));
}

TEST(Server, ZeroServiceTimeCompletesSameInstant) {
  Engine engine;
  Server server(engine, 1);
  bool done = false;
  server.submit(0.0, [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Server, BusyTimeAccumulates) {
  Engine engine;
  Server server(engine, 1);
  server.submit(1.5, [] {});
  server.submit(2.5, [] {});
  engine.run();
  EXPECT_DOUBLE_EQ(server.busy_time(), 4.0);
}

TEST(Server, NegativeServiceTimeThrows) {
  Engine engine;
  Server server(engine);
  EXPECT_THROW(server.submit(-1.0, [] {}), util::Error);
}

// ----------------------------------------------------------------- Channel

TEST(Channel, PushThenPopDelivers) {
  Engine engine;
  Channel<int> chan(engine);
  chan.push(7);
  int got = 0;
  chan.pop([&](int v) { got = v; });
  engine.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, PopThenPushDelivers) {
  Engine engine;
  Channel<int> chan(engine);
  int got = 0;
  chan.pop([&](int v) { got = v; });
  EXPECT_EQ(chan.waiting_consumers(), 1u);
  chan.push(9);
  engine.run();
  EXPECT_EQ(got, 9);
}

TEST(Channel, PreservesFifoOrder) {
  Engine engine;
  Channel<int> chan(engine);
  std::vector<int> got;
  for (int i = 0; i < 5; ++i) chan.push(i);
  for (int i = 0; i < 5; ++i) chan.pop([&](int v) { got.push_back(v); });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, DrainReceivesBacklogAndFuture) {
  Engine engine;
  Channel<std::string> chan(engine);
  chan.push("a");
  chan.push("b");
  std::vector<std::string> got;
  chan.drain([&](std::string v) { got.push_back(std::move(v)); });
  engine.run();
  chan.push("c");
  engine.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Channel, PopAfterDrainThrows) {
  Engine engine;
  Channel<int> chan(engine);
  chan.drain([](int) {});
  EXPECT_THROW(chan.pop([](int) {}), util::Error);
}

// ------------------------------------------------------------------- Stats

TEST(Tally, ComputesMoments) {
  Tally tally;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    tally.add(x);
  }
  EXPECT_EQ(tally.count(), 8u);
  EXPECT_DOUBLE_EQ(tally.mean(), 5.0);
  EXPECT_DOUBLE_EQ(tally.min(), 2.0);
  EXPECT_DOUBLE_EQ(tally.max(), 9.0);
  EXPECT_NEAR(tally.stddev(), 2.0, 1e-12);
}

TEST(Tally, EmptyTallyIsZero) {
  Tally tally;
  EXPECT_EQ(tally.count(), 0u);
  EXPECT_DOUBLE_EQ(tally.mean(), 0.0);
  EXPECT_DOUBLE_EQ(tally.stddev(), 0.0);
}

TEST(TimeWeighted, IntegratesStepFunction) {
  TimeWeighted tw;
  tw.set(0.0, 0.0);
  tw.set(10.0, 4.0);   // 0 for 10 s
  tw.set(20.0, 2.0);   // 4 for 10 s
  EXPECT_DOUBLE_EQ(tw.integral(30.0), 0.0 * 10 + 4.0 * 10 + 2.0 * 10);
  EXPECT_DOUBLE_EQ(tw.time_average(30.0), 2.0);
  EXPECT_DOUBLE_EQ(tw.max_value(), 4.0);
}

TEST(TimeWeighted, AddAppliesDelta) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);
  tw.add(5.0, 2.0);
  EXPECT_DOUBLE_EQ(tw.value(), 3.0);
  EXPECT_DOUBLE_EQ(tw.integral(10.0), 1.0 * 5 + 3.0 * 5);
}

TEST(TimeWeighted, OutOfOrderUpdateThrows) {
  TimeWeighted tw;
  tw.set(5.0, 1.0);
  EXPECT_THROW(tw.set(4.0, 2.0), util::Error);
}

TEST(RateSeries, BinsAndRates) {
  RateSeries series(1.0);
  series.record(0.1);
  series.record(0.9);
  series.record(2.5);
  series.record(2.6);
  series.record(2.7);
  EXPECT_EQ(series.total(), 5u);
  ASSERT_EQ(series.bins().size(), 3u);
  EXPECT_EQ(series.bins()[0], 2u);
  EXPECT_EQ(series.bins()[1], 0u);
  EXPECT_EQ(series.bins()[2], 3u);
  EXPECT_DOUBLE_EQ(series.peak_rate(), 3.0);
  EXPECT_DOUBLE_EQ(series.mean_nonzero_rate(), 2.5);
  EXPECT_NEAR(series.window_rate(), 5.0 / 2.6, 1e-12);
}

TEST(RateSeries, EmptySeriesIsZero) {
  RateSeries series;
  EXPECT_DOUBLE_EQ(series.peak_rate(), 0.0);
  EXPECT_DOUBLE_EQ(series.mean_nonzero_rate(), 0.0);
  EXPECT_DOUBLE_EQ(series.window_rate(), 0.0);
}

// ------------------------------------------------------------------ Random

TEST(RngStream, DeterministicPerSeed) {
  RngStream a(42, "ctl");
  RngStream b(42, "ctl");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, StreamsAreIndependentByName) {
  RngStream a(42, "ctl");
  RngStream b(42, "exec");
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differs);
}

TEST(RngStream, UniformInUnitInterval) {
  RngStream rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformIntCoversRangeInclusive) {
  RngStream rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngStream, ExponentialMeanConverges) {
  RngStream rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngStream, LognormalMeanCvConverges) {
  RngStream rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean_cv(10.0, 0.3);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(10.0, 0.0), 10.0);
}

// ------------------------------------------------------------------- Trace

TEST(Trace, RecordsAndSelects) {
  Engine engine;
  Trace trace(engine);
  engine.at(1.0, [&] { trace.record("agent", "launch", "task.0", 4); });
  engine.at(2.0, [&] { trace.record("flux.0", "launch", "task.1", 8); });
  engine.at(3.0, [&] { trace.record("agent", "done", "task.0"); });
  engine.run();

  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.select("launch").size(), 2u);
  EXPECT_EQ(trace.select("launch", "agent").size(), 1u);
  Time t = 0;
  ASSERT_TRUE(trace.first_time("task.0", "done", t));
  EXPECT_DOUBLE_EQ(t, 3.0);
  EXPECT_FALSE(trace.first_time("task.9", "done", t));
}

TEST(Trace, WritesJsonlWithEscaping) {
  Engine engine;
  Trace trace(engine);
  engine.at(1.5, [&] { trace.record("agent", "launch", "task \"a\"", 4); });
  engine.run();
  std::ostringstream os;
  trace.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"time\":1.5,\"comp\":\"agent\",\"event\":\"launch\","
            "\"entity\":\"task \\\"a\\\"\",\"value\":4}\n");
}

}  // namespace
}  // namespace flotilla::sim
