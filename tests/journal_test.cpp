// Tests for the durable event journal (src/journal/): byte-stable codec
// round-trips over seeded record streams, torn-tail vs corruption
// classification with record indices, journal byte-determinism of full
// runs, StateImage folding, and the bounded crash-at-every-event sweep on
// a small fixed scenario (docs/recovery.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/spec.hpp"
#include "journal/journal.hpp"
#include "journal/record.hpp"
#include "journal/recovery.hpp"
#include "sim/random.hpp"
#include "util/error.hpp"

namespace flotilla::journal {
namespace {

// Draws a random but valid record of any type — the property tests stream
// these through the codec.
Record random_record(sim::RngStream& rng) {
  const auto pick_name = [&](std::initializer_list<const char*> names) {
    auto it = names.begin();
    std::advance(it, rng.uniform_int(
                         0, static_cast<std::int64_t>(names.size()) - 1));
    return std::string(*it);
  };
  const sim::Time t = rng.uniform(0.0, 1e6);
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return header_record(rng.next_u64(),
                           "seed=" + std::to_string(rng.uniform_int(1, 999)) +
                               ";nodes=4;tasks=16");
    case 1:
      return ready_record(t);
    case 2:
      return transition_record(
          t, "task." + std::to_string(rng.uniform_int(0, 99999)),
          pick_name({"NEW", "TMGR_SCHEDULING", "RUNNING"}),
          pick_name({"RUNNING", "DONE", "FAILED", "CANCELED"}),
          pick_name({"", "srun", "flux", "dragon", "prrte"}),
          rng.uniform_int(0, 5));
    case 3:
      return alloc_record(t, rng.uniform_int(0, 512),
                          rng.uniform_int(-64, 64), rng.uniform_int(-8, 8));
    case 4:
      return fault_record(t, pick_name({"crash", "cancel"}),
                          pick_name({"", "flux", "dragon"}),
                          rng.uniform_int(0, 7), rng.uniform_int(0, 100));
    default:
      return end_record(t, rng.uniform_int(0, 10000),
                        rng.uniform_int(0, 100), rng.uniform_int(0, 100),
                        rng.next_u64() % 1000000);
  }
}

std::string random_journal(std::uint64_t seed, int records) {
  sim::RngStream rng(seed, "journal.test");
  Writer writer;
  for (int i = 0; i < records; ++i) writer.append(random_record(rng));
  return writer.bytes();
}

// ------------------------------------------------------------------ codec

TEST(Codec, EncodeDecodeEncodeIsByteIdentical) {
  // The round-trip property over seeded random streams: decoding a journal
  // and re-encoding every record reproduces the input bytes exactly.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto bytes = random_journal(seed, 40);
    const auto result = read(bytes);
    ASSERT_TRUE(result.intact()) << "seed " << seed << ": " << result.error;
    ASSERT_FALSE(result.truncated);
    ASSERT_EQ(result.records.size(), 40u);
    std::string reencoded;
    for (const auto& record : result.records) reencoded += record.encode();
    EXPECT_EQ(reencoded, bytes) << "seed " << seed;
  }
}

TEST(Codec, EncodingIsDeterministic) {
  EXPECT_EQ(random_journal(7, 64), random_journal(7, 64));
  EXPECT_NE(random_journal(7, 64), random_journal(8, 64));
}

TEST(Codec, ChecksumCoversEveryByteOfTheBody) {
  // Flipping any single body byte must fail the checksum.
  const auto line = transition_record(1.5, "task.000001", "RUNNING", "DONE",
                                      "flux", 0)
                        .encode();
  for (std::size_t i = 0; i + 12 < line.size(); ++i) {  // spare the checksum
    std::string damaged = line;
    damaged[i] = damaged[i] == 'x' ? 'y' : 'x';
    const auto result = read(damaged);
    EXPECT_TRUE(result.truncated || result.corrupt)
        << "flipped byte " << i << " went undetected";
    EXPECT_TRUE(result.records.empty());
  }
}

TEST(Codec, RejectsFieldSeparatorInValues) {
  EXPECT_THROW(
      transition_record(0.0, "task|0", "NEW", "DONE", "", 0).encode(),
      util::Error);
  EXPECT_THROW(header_record(1, "spec\nwith-newline").encode(), util::Error);
}

TEST(Codec, TimesAreFixedPrecision) {
  // 9 fractional digits, so encode() is stable across platforms and
  // the recovery oracle can compare journals byte-for-byte.
  const auto line = ready_record(1.0 / 3.0).encode();
  EXPECT_NE(line.find("t=0.333333333|"), std::string::npos) << line;
}

// ------------------------------------------------- torn tail vs corruption

TEST(Reader, TruncatedTailIsToleratedAndReported) {
  const auto bytes = random_journal(3, 20);
  // Chop at every byte boundary: the reader must return the intact prefix
  // and report the partial tail, never a hard corruption.
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    if (bytes[cut - 1] == '\n') continue;  // clean prefix, nothing torn
    const auto result = read(bytes.substr(0, cut));
    EXPECT_TRUE(result.intact());
    EXPECT_TRUE(result.truncated);
    const auto intact_lines = static_cast<std::size_t>(std::count(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut),
        '\n'));
    EXPECT_EQ(result.records.size(), intact_lines) << "cut at " << cut;
    EXPECT_GT(result.truncated_bytes, 0u);
  }
}

TEST(Reader, CleanPrefixHasNoTruncation) {
  const auto bytes = random_journal(4, 10);
  const auto nl = bytes.find('\n');
  const auto result = read(bytes.substr(0, nl + 1));
  EXPECT_TRUE(result.intact());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.records.size(), 1u);
}

TEST(Reader, MidStreamCorruptionIsAHardErrorWithTheRecordIndex) {
  const auto bytes = random_journal(5, 12);
  // Damage a byte inside the fourth line (index 3) — not the tail.
  std::size_t pos = 0;
  for (int line = 0; line < 3; ++line) pos = bytes.find('\n', pos) + 1;
  std::string damaged = bytes;
  damaged[pos + 1] = damaged[pos + 1] == 'x' ? 'y' : 'x';
  const auto result = read(damaged);
  EXPECT_TRUE(result.corrupt);
  EXPECT_EQ(result.corrupt_index, 3u);
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_FALSE(result.error.empty());
}

TEST(Reader, DecodableFinalLineWithoutNewlineCountsAsTorn) {
  // The '\n' terminator is part of the durable unit: a record whose bytes
  // all made it to disk except the terminator is still a torn write.
  auto bytes = random_journal(6, 5);
  bytes.pop_back();  // drop the final '\n'
  const auto result = read(bytes);
  EXPECT_TRUE(result.intact());
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.records.size(), 4u);
}

// -------------------------------------------------------- recovery manager

TEST(RecoveryManager, RaisesOnCorruptionWithTheRecordIndex) {
  Writer writer;
  writer.append(header_record(42, "seed=42"));
  writer.append(ready_record(1.0));
  writer.append(end_record(2.0, 1, 0, 0, 10));
  auto bytes = writer.bytes();
  const auto pos = bytes.find('\n') + 2;  // inside record #1
  bytes[pos] = bytes[pos] == 'x' ? 'y' : 'x';
  try {
    RecoveryManager rm(bytes);
    FAIL() << "corrupt journal accepted";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("#1"), std::string::npos)
        << e.what();
  }
}

TEST(RecoveryManager, RaisesWhenTheFirstRecordIsNotAHeader) {
  Writer writer;
  writer.append(ready_record(1.0));
  EXPECT_THROW(RecoveryManager rm(writer.bytes()), util::Error);
  EXPECT_THROW(RecoveryManager rm(""), util::Error);
}

TEST(RecoveryManager, FoldsThePrefixIntoAStateImage) {
  Writer writer;
  writer.append(header_record(9, "seed=9"));
  writer.append(ready_record(5.0));
  writer.append(alloc_record(5.0, 2, -4, -1));
  writer.append(
      transition_record(5.0, "task.0", "NEW", "TMGR_SCHEDULING", "", 0));
  writer.append(
      transition_record(6.0, "task.0", "RUNNING", "DONE", "flux", 1));
  writer.append(
      transition_record(6.0, "task.1", "NEW", "TMGR_SCHEDULING", "", 0));
  writer.append(fault_record(7.0, "cancel", "", 0, 3));
  writer.append(alloc_record(7.5, 2, 4, 1));

  const RecoveryManager rm(writer.bytes());
  EXPECT_EQ(rm.seed(), 9u);
  EXPECT_EQ(rm.spec_line(), "seed=9");
  EXPECT_FALSE(rm.truncated());
  EXPECT_EQ(rm.prefix().size(), 8u);

  const auto image = rm.image();
  EXPECT_TRUE(image.ready);
  EXPECT_EQ(image.ready_time, 5.0);
  EXPECT_EQ(image.faults, 1u);
  EXPECT_FALSE(image.ended);
  EXPECT_EQ(image.last_time, 7.5);
  ASSERT_EQ(image.tasks.size(), 2u);
  EXPECT_EQ(image.tasks.at("task.0").state, "DONE");
  EXPECT_EQ(image.tasks.at("task.0").backend, "flux");
  EXPECT_EQ(image.tasks.at("task.0").terminal_edges, 1);
  EXPECT_EQ(image.tasks.at("task.1").state, "TMGR_SCHEDULING");
  EXPECT_EQ(image.tasks_in_flight(), 1u);
  // The node 2 allocation was released: net delta zero.
  EXPECT_EQ(image.core_delta.at(2), 0);
  EXPECT_EQ(image.gpu_delta.at(2), 0);
}

// ---------------------------------------------- full-run byte determinism

check::ScenarioSpec small_spec() {
  check::ScenarioSpec spec;
  spec.seed = 13;
  spec.nodes = 2;
  spec.backends = {{"srun"}};
  spec.workload = "sleep";
  spec.tasks = 5;
  spec.duration = 2.0;
  return spec;
}

TEST(Journal, SameSeedRunsProduceByteIdenticalJournals) {
  check::RunOptions opts;
  opts.journal = true;
  const auto first = check::run_scenario(small_spec(), opts);
  const auto second = check::run_scenario(small_spec(), opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.journal.empty());
  EXPECT_EQ(first.journal, second.journal);
  // And the journal is structurally sound: header first, end record last.
  const auto parsed = read(first.journal);
  ASSERT_TRUE(parsed.intact());
  EXPECT_FALSE(parsed.truncated);
  EXPECT_EQ(parsed.records.front().type, RecordType::kHeader);
  EXPECT_EQ(parsed.records.back().type, RecordType::kEnd);
  EXPECT_EQ(parsed.records.back().done, 5);
}

TEST(Journal, HeaderStripsTheOracleDimensions) {
  // crash_at/recover describe how the oracle exercises a scenario, not the
  // run itself: every crash point must share one reference journal.
  auto spec = small_spec();
  check::RunOptions opts;
  opts.journal = true;
  const auto reference = check::run_scenario(spec, opts);
  spec.crash_at = 1;  // crash immediately after the header
  auto copts = opts;
  copts.crash_at = spec.crash_at;
  const auto crashed = check::run_scenario(spec, copts);
  ASSERT_TRUE(crashed.crashed);
  const auto ref_header = reference.journal.substr(
      0, reference.journal.find('\n') + 1);
  EXPECT_EQ(crashed.journal, ref_header);
}

// ------------------------------------------- crash-at-every-event sweep

TEST(Recovery, CrashAtEveryRecordRecoversToTheUninterruptedRun) {
  // The bounded exhaustive sweep (the CLI twin is flotilla-fuzz
  // --crash-all): one uninterrupted reference, then the full recovery
  // oracle — crash, reload, replay-validate, compare terminal state —
  // at every single record index of the small fixed scenario.
  const auto spec = small_spec();
  check::RunOptions opts;
  opts.journal = true;
  const auto reference = check::run_scenario(spec, opts);
  ASSERT_TRUE(reference.ok());
  const auto records = static_cast<std::uint64_t>(std::count(
      reference.journal.begin(), reference.journal.end(), '\n'));
  ASSERT_GT(records, 10u);
  for (std::uint64_t k = 1; k <= records; ++k) {
    auto crashed = spec;
    crashed.crash_at = k;
    const auto violations = check::check_recovery(crashed, reference);
    EXPECT_TRUE(violations.empty())
        << "crash_at=" << k << ": " << violations.front().to_string();
  }
}

}  // namespace
}  // namespace flotilla::journal
