// Fixture: wall-clock rule. Every clock access below must be flagged.
#include <chrono>
#include <ctime>

namespace fixture {

double stamp_start() {
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long stamp_epoch() {
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  return ::time(nullptr);
}

double stamp_hr() {
  return std::chrono::duration<double>(
             std::chrono::high_resolution_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
