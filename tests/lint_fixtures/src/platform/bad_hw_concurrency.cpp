// Fixture: hardware-concurrency rule.
#include <thread>

namespace fixture {

unsigned pick_workers(unsigned requested) {
  if (requested != 0) return requested;
  return std::thread::hardware_concurrency();
}

}  // namespace fixture
