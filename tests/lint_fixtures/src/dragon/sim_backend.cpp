// Fixture: dragon scope. Matches *_backend.* so it IS simulation scope;
// the clock below must be flagged by a directory scan.
#include <chrono>

namespace fixture {

double backend_dispatch_stamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
