// Fixture: dragon scope. Does NOT match *_backend.*, so a directory scan
// must skip it (the threaded execution layer may use real clocks). Named
// explicitly on the command line it is still checked.
#include <chrono>

namespace fixture {

double worker_heartbeat() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
