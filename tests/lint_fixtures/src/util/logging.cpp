// Fixture: allowlist. util/logging is the real-threaded execution layer's
// allowlisted logger; even an explicit command-line mention must not be
// checked, so the violations below never appear in diagnostics.
#include <ctime>

namespace fixture {

long log_timestamp() { return ::time(nullptr); }

}  // namespace fixture
