// Fixture: unordered-iteration rule. The two range-fors over hash
// containers must be flagged; the std::map loop must not.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct JobTable {
  std::unordered_map<std::string, int> active_;
  std::unordered_set<std::string> drained;
  std::map<std::string, int> ordered_log;

  std::vector<std::string> broadcast_cancel() {
    std::vector<std::string> order;
    for (const auto& [id, slot] : active_) {
      (void)slot;
      order.push_back(id);
    }
    for (const auto& id : drained) order.push_back(id);
    for (const auto& [id, slot] : ordered_log) {
      (void)slot;
      order.push_back(id);
    }
    return order;
  }
};

}  // namespace fixture
