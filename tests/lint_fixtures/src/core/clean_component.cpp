// Fixture: counter-example — everything here is legal. Mentions of rand()
// or steady_clock in comments and string literals must not be flagged, and
// iteration over an ordered snapshot of a hash map is the blessed pattern.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// A component might document "do not call rand() or steady_clock here".
inline const char* kHint = "deterministic: no rand(), no steady_clock";

struct Registry {
  std::unordered_map<std::string, int> slots_;

  std::vector<std::string> sorted_names() const {
    std::vector<std::string> names;
    names.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) names.emplace_back();
    std::sort(names.begin(), names.end());
    return names;
  }

  int total(const std::vector<std::string>& names) const {
    int sum = 0;
    for (const auto& name : names) sum += slots_.count(name) ? 1 : 0;
    return sum;
  }
};

}  // namespace fixture
