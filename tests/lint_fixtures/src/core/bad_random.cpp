// Fixture: unseeded-random rule.
#include <cstdlib>
#include <random>

namespace fixture {

int noisy_choice(int n) {
  std::random_device entropy;
  std::mt19937 gen(entropy());
  return static_cast<int>(gen() % static_cast<unsigned>(n));
}

int legacy_choice(int n) {
  srand(42);
  return rand() % n;
}

}  // namespace fixture
