// Fixture: real-sleep rule.
#include <chrono>
#include <thread>

namespace fixture {

void settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace fixture
