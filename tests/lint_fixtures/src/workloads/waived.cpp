// Fixture: waiver handling. The first violation carries a well-formed
// waiver and must be suppressed; the second has no reason and must still
// be reported.
#include <ctime>

namespace fixture {

long run_started_epoch() {
  return ::time(nullptr);  // FLOTILLA_LINT_ALLOW(wall-clock): run metadata only, never enters sim time
}

long run_finished_epoch() {
  return ::time(nullptr);  // FLOTILLA_LINT_ALLOW(wall-clock)
}

}  // namespace fixture
