// Session-level determinism: a full pilot run is bit-identical for a given
// seed and diverges across seeds — the property that makes experiment
// sweeps and golden regressions trustworthy.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/flotilla.hpp"

namespace flotilla::core {
namespace {

struct Fingerprint {
  double makespan = 0.0;
  double avg_tput = 0.0;
  double util = 0.0;
  std::uint64_t done = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

class SessionDeterminism : public ::testing::TestWithParam<std::string> {};

Fingerprint run_session(const std::string& backend, std::uint64_t seed) {
  Session session(platform::frontier_spec(), 4, seed);
  PilotManager pmgr(session);
  PilotDescription desc;
  desc.nodes = 4;
  if (backend == "flux") {
    desc.backends = {{.type = "flux", .partitions = 2}};
  } else {
    desc.backends = {{backend}};
  }
  auto& pilot = pmgr.submit(std::move(desc));
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const Task&) {});
  for (int i = 0; i < 300; ++i) {
    TaskDescription task;
    task.demand.cores = 1;
    task.duration = 20.0;
    task.fail_probability = 0.1;
    task.max_retries = 2;
    tmgr.submit(std::move(task));
  }
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  return Fingerprint{metrics.makespan(), metrics.avg_throughput(),
                     metrics.core_utilization(pilot.total_cores()),
                     metrics.tasks_done()};
}

TEST_P(SessionDeterminism, IdenticalForSameSeed) {
  const auto a = run_session(GetParam(), 42);
  const auto b = run_session(GetParam(), 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.done + 0, b.done);
}

TEST_P(SessionDeterminism, DivergesAcrossSeeds) {
  const auto a = run_session(GetParam(), 42);
  const auto b = run_session(GetParam(), 43);
  // Jittered service times make exact equality across seeds essentially
  // impossible; makespan is the most sensitive aggregate.
  EXPECT_NE(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SessionDeterminism,
                         ::testing::Values("srun", "flux", "dragon",
                                           "prrte"),
                         [](const auto& param_info) { return param_info.param; });

// Hybrid (flux+dragon) same-seed trace equality: the aggregate fingerprint
// above can mask reordered events, so this test compares the *entire*
// per-task trace, CSV line for CSV line, across two in-process runs of the
// paper's mixed executable/function configuration.
TEST(SessionDeterminism, HybridFluxDragonTraceIsBitIdentical) {
  auto trace_of = [] {
    Session session(platform::frontier_spec(), 4, 42);
    PilotManager pmgr(session);
    PilotDescription desc;
    desc.nodes = 4;
    desc.backends = {{.type = "flux", .partitions = 2, .nodes = 2},
                     {.type = "dragon", .nodes = 2}};
    desc.trace_tasks = true;
    auto& pilot = pmgr.submit(std::move(desc));
    pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    TaskManager tmgr(session, pilot.agent());
    tmgr.on_complete([](const Task&) {});
    // Half executables (flux lane), half functions (dragon lane).
    for (int i = 0; i < 200; ++i) {
      TaskDescription task;
      task.demand.cores = 1;
      task.duration = 5.0;
      task.fail_probability = 0.05;
      task.max_retries = 1;
      task.modality = (i % 2 == 0) ? platform::TaskModality::kExecutable
                                   : platform::TaskModality::kFunction;
      tmgr.submit(std::move(task));
    }
    session.run();
    std::ostringstream os;
    session.trace().write_csv(os);
    return os.str();
  };
  const auto a = trace_of();
  const auto b = trace_of();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace flotilla::core
