// Fixture: wall-clock helper in the util layer, which sits outside the
// determinism scope — defining it here is legal, but feeding its return
// value into a trace sink from simulation code is exactly what the
// ipc-determinism pass exists to catch.
#pragma once

#include <chrono>

namespace fixture {

inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
