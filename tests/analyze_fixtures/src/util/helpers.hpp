// Fixture: clean leaf-layer header; no pass should report anything here.
#pragma once

namespace fixture {

inline int clamp01(int v) { return v < 0 ? 0 : (v > 1 ? 1 : v); }

}  // namespace fixture
