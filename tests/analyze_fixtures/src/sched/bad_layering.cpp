// Fixture: architecture violation. sched sits below core in the declared
// DAG (layers.conf), so this include must be reported as arch-layering.
#include "core/pool.hpp"
#include "util/helpers.hpp"

namespace fixture {

int schedule_width() { return clamp01(1); }

}  // namespace fixture
