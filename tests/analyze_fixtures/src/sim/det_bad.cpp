// Fixture: determinism violation in simulation scope — the ported
// flotilla-lint rules must fire from the analyze pass registry too.
#include <chrono>

namespace fixture {

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
