// Fixture: nondeterministic taint reaching a trace span through a helper
// return. The wall-clock read lives two calls down, in the util layer
// where the flat determinism rules do not apply — only the
// interprocedural taint pass can connect it to the span payload.
#include "util/wallclock.hpp"

namespace fixture {

enum class SpanType { kTask };

class Tracer {
 public:
  void begin(SpanType type, const char* component, int entity, double value);
};

class Probe {
 public:
  double stamp() const { return wall_seconds(); }

  void submit() { tracer_.begin(SpanType::kTask, "sched", 7, stamp()); }

 private:
  Tracer tracer_;
};

}  // namespace fixture
