// Fixture: shared-state audit root. sim::Engine::run reaches step() and
// the Tally helper; ticks_ and Tally::total_ are written without a guard
// (two inventory entries, severity "note" — never a gating finding),
// while guarded_ is written under mu_ and OfflineReport::bump is
// unreachable from the root, so neither may appear in the report.
#include <mutex>

namespace sim {

class Tally {
 public:
  void accumulate(long v) { total_ += v; }

 private:
  long total_ = 0;
};

class Engine {
 public:
  void run() {
    while (step()) {
    }
  }

 private:
  bool step() {
    ++ticks_;
    tally_.accumulate(1);
    checkpoint();
    return ticks_ < 100;
  }

  void checkpoint() {
    std::lock_guard<std::mutex> lock(mu_);
    ++guarded_;
  }

  std::mutex mu_;
  long ticks_ = 0;
  long guarded_ = 0;
  Tally tally_;
};

class OfflineReport {
 public:
  void bump() { ++lines_; }

 private:
  long lines_ = 0;
};

}  // namespace sim
