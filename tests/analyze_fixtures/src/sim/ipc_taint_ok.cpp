// Fixture: deterministic span payload — the helper derives its value
// from simulation state, not host time, so the interprocedural taint
// pass must stay silent on this file.
namespace fixture {

enum class SpanType { kTask };

class CleanTracer {
 public:
  void begin(SpanType type, const char* component, int entity, double value);
};

class CleanProbe {
 public:
  double sim_now() const { return tick_ * 0.001; }

  void submit() { tracer_.begin(SpanType::kTask, "sched", 7, sim_now()); }

 private:
  CleanTracer tracer_;
  long tick_ = 0;
};

}  // namespace fixture
