// Fixture: determinism counter-example — the words below only appear in
// comments and string literals, which the lexer strips, and the waived
// call carries a well-formed FLOTILLA_LINT_ALLOW.
// system_clock in a comment is fine; so is rand().
#include <ctime>
#include <string>

namespace fixture {

std::string describe() {
  return "uses system_clock and sleep_for internally";
}

long run_started_epoch() {
  return ::time(nullptr);  // FLOTILLA_LINT_ALLOW(wall-clock): run metadata only, never enters sim time
}

}  // namespace fixture
