// Fixture: span shapes the pass must NOT flag — an event-driven span
// (begin here, end in the completion lambda), a return after the span is
// closed, an end-only body (closing a span opened elsewhere), and two
// distinct span types interleaved without leaks.
#include <cstdint>
#include <functional>

namespace fixture {

enum class SpanType { kTaskSubmit, kTaskLaunch };

struct Tracer {
  void begin(SpanType type, std::uint64_t id);
  void end(SpanType type, std::uint64_t id);
};

Tracer tracer;
std::function<void()> on_done;

bool launch_async(std::uint64_t id, bool valid) {
  tracer.begin(SpanType::kTaskLaunch, id);
  if (!valid) {
    return false;  // event-driven span: no lexical end in this body
  }
  on_done = [id] { tracer.end(SpanType::kTaskLaunch, id); };
  return true;
}

bool submit_checked(std::uint64_t id, bool valid) {
  tracer.begin(SpanType::kTaskSubmit, id);
  tracer.end(SpanType::kTaskSubmit, id);
  if (!valid) {
    return false;  // after the span closed: fine
  }
  return true;
}

void close_elsewhere(std::uint64_t id) {
  tracer.end(SpanType::kTaskSubmit, id);
}

}  // namespace fixture
