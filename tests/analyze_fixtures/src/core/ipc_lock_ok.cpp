// Fixture: interprocedural lock counter-examples — every call into
// re-acquiring or blocking code happens after the guard's scope closes,
// so the ipc-locks pass must stay silent on this file.
#include <condition_variable>
#include <mutex>

namespace fixture {

class SafeJournal {
 public:
  void put(int v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_ = v;
    }
    flush();
  }

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++seq_;
    }
    block_for_space();
  }

 private:
  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    ++flushed_;
  }

  void block_for_space() {
    std::unique_lock<std::mutex> lk(space_mu_);
    space_cv_.wait(lk);
  }

  std::mutex mu_;
  std::mutex space_mu_;
  std::condition_variable space_cv_;
  int last_ = 0;
  int seq_ = 0;
  int flushed_ = 0;
};

}  // namespace fixture
