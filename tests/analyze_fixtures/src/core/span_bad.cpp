// Fixture: span-balance violation. submit() opens a kTaskSubmit span and
// closes it at the end of the function, but the validation failure path
// returns early in between — the span leaks and skews the overhead
// report's per-category pairing.
#include <cstdint>

namespace fixture {

enum class SpanType { kTaskSubmit, kTaskLaunch };

struct Tracer {
  void begin(SpanType type, std::uint64_t id);
  void end(SpanType type, std::uint64_t id);
};

Tracer tracer;

bool submit(std::uint64_t id, bool valid) {
  tracer.begin(SpanType::kTaskSubmit, id);
  if (!valid) {
    return false;
  }
  tracer.end(SpanType::kTaskSubmit, id);
  return true;
}

}  // namespace fixture
