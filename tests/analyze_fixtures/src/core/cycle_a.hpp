// Fixture: one half of an include cycle (both files live in the same
// layer, so only arch-cycle fires, not arch-layering).
#pragma once
#include "core/cycle_b.hpp"

namespace fixture {
struct CycleA {};
}  // namespace fixture
