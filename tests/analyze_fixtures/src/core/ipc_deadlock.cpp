// Fixture: interprocedural lock bugs the flat lock pass cannot see.
// put() holds buf_mu_ and calls flush(), which reaches append() — and
// append() re-acquires buf_mu_ two hops away (ipc-self-deadlock).
// drain() holds buf_mu_ and calls block_for_space(), which parks on a
// condition variable (ipc-blocking-under-lock).
#include <condition_variable>
#include <mutex>

namespace fixture {

class Journal {
 public:
  void put(int v) {
    std::lock_guard<std::mutex> lock(buf_mu_);
    last_ = v;
    flush();
  }

  void drain() {
    std::lock_guard<std::mutex> lock(buf_mu_);
    block_for_space();
  }

 private:
  void flush() { append(); }

  void append() {
    std::lock_guard<std::mutex> lock(buf_mu_);
    ++flushed_;
  }

  void block_for_space() {
    std::unique_lock<std::mutex> lk(space_mu_);
    space_cv_.wait(lk);
  }

  std::mutex buf_mu_;
  std::mutex space_mu_;
  std::condition_variable space_cv_;
  int last_ = 0;
  int flushed_ = 0;
};

}  // namespace fixture
