// Fixture: ABBA deadlock — submit_then_flush acquires queue_mu_ before
// flush_mu_, flush_then_submit the reverse. Both nesting sites must be
// reported as lock-order, each pointing at the opposite one.
#include <mutex>

namespace fixture {

class Channels {
 public:
  void submit_then_flush() {
    std::lock_guard<std::mutex> q(queue_mu_);
    std::lock_guard<std::mutex> f(flush_mu_);
  }

  void flush_then_submit() {
    std::lock_guard<std::mutex> f(flush_mu_);
    std::lock_guard<std::mutex> q(queue_mu_);
  }

 private:
  std::mutex queue_mu_;
  std::mutex flush_mu_;
};

}  // namespace fixture
