// Fixture: the PR1 ProcessPool deadlock class, reintroduced on purpose.
// finish() runs the completion callback while still holding mu_ — a
// callback that resubmits re-enters Pool and deadlocks. The pass must
// flag the member-callback call (line 16), the moved-callback call
// (line 22), and the virtual dispatch (line 26).
#include "core/pool.hpp"

#include <utility>

namespace fixture {

void Pool::finish(int id, int rc) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(id);
  if (it == running_.end()) return;
  it->second.done(rc);
}

void Pool::submit(int id, Callback done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.count(id) != 0) {
    std::move(done)(-1);
    return;
  }
  running_[id].done = std::move(done);
  on_drain();
}

void Pool::on_drain() {}

}  // namespace fixture
