// Fixture: the correct shapes the lock pass must NOT flag — the PR1 fix
// (move the callback out under the lock, invoke after release), an
// explicit unlock() before the call, a defer_lock guard that never
// engages, and a deferred lambda declared under the lock but executed
// later (a lambda body is independent: it does not run under the
// enclosing guard).
#include "core/pool.hpp"

#include <utility>
#include <vector>

namespace fixture {

class Drain {
 public:
  void finish_outside(int id, int rc) {
    Callback run;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = running_.find(id);
      if (it == running_.end()) return;
      run = std::move(it->second.done);
      running_.erase(it);
    }
    run(rc);
  }

  void finish_unlocked(int rc) {
    std::unique_lock<std::mutex> held(mu_);
    Callback run = std::move(pending_);
    held.unlock();
    run(rc);
  }

  void queue_deferred(int rc) {
    // The guard IS held here, but the lambda only runs later, outside it.
    std::lock_guard<std::mutex> lock(mu_);
    deferred_.push_back([this, rc] { pending_(rc); });
  }

  bool try_engage() {
    std::unique_lock<std::mutex> idle(mu_, std::defer_lock);
    return idle.owns_lock();
  }

 private:
  struct Running {
    Callback done;
  };
  std::mutex mu_;
  Callback pending_;
  std::map<int, Running> running_;
  std::vector<std::function<void()>> deferred_;
};

}  // namespace fixture
