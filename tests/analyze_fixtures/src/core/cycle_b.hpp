// Fixture: the other half of the include cycle.
#pragma once
#include "core/cycle_a.hpp"

namespace fixture {
struct CycleB {};
}  // namespace fixture
