// Fixture header: declarations the lock-discipline pass harvests from the
// paired header — the std::function alias and the callback member mirror
// the real local/process_pool API.
#pragma once

#include <functional>
#include <mutex>
#include <map>

namespace fixture {

using Callback = std::function<void(int)>;

class Pool {
 public:
  void submit(int id, Callback done);
  void finish(int id, int rc);
  virtual void on_drain();

 private:
  struct Running {
    Callback done;
  };
  std::mutex mu_;
  std::map<int, Running> running_;
};

}  // namespace fixture
