// Fixture: no layer prefix in layers.conf covers src/orphan/, so this
// file must be reported as arch-unmapped.
#pragma once

namespace fixture {
struct Orphan {};
}  // namespace fixture
