#include "sim/mirror.hpp"

namespace sim {

void Mirror::record(double value) {
  engine_->invoke_on(left_, [this, value] { sum_ += value; });
}

void Mirror::replicate(double value) {
  engine_->invoke_on(right_, [this, value] { peak_ = value; });
}

}  // namespace sim
