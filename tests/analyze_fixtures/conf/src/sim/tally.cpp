#include "sim/tally.hpp"

namespace sim {

void ShardTally::submit(double value) {
  engine_->invoke_on(shard_, [this, value] { apply(value); });
}

void ShardTally::apply(double value) {
  total_ += value;
  count_ += 1;
}

}  // namespace sim
