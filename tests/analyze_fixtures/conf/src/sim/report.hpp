// Seeded threads-pinned violation: Reporter is called from the storm
// harness (src/sim/storm.cpp), so a `verified threads-pinned` claim over
// it must fail — the code IS reachable from the threaded roots.
#pragma once

namespace sim {

class Reporter {
 public:
  void flush();

 private:
  long lines_ = 0;
};

}  // namespace sim
