// Seeded conf-unproven fixture: one writer (`fold`) reached from two
// differently-targeted dispatches, so its shard context is Multi and a
// `verified shard-confined` claim over Blend cannot be proved.
#pragma once

#include "sim/engine.hpp"

namespace sim {

class Blend {
 public:
  explicit Blend(Engine* engine) : engine_(engine) {}

  void scatter(double value);

 private:
  void fold(double value);

  Engine* engine_;
  int alpha_ = 1;
  int beta_ = 2;
  double acc_ = 0.0;
};

}  // namespace sim
