#include "sim/report.hpp"

namespace sim {

void Reporter::flush() { lines_ += 1; }

}  // namespace sim
