#include "sim/engine.hpp"

namespace sim {

void Engine::in(double delay, Callback fn) {
  (void)delay;
  next_ = std::move(fn);
}

void Engine::in(int shard, double delay, Callback fn) {
  (void)shard;
  (void)delay;
  next_ = std::move(fn);
}

void Engine::at(int shard, double when, Callback fn) {
  (void)shard;
  (void)when;
  next_ = std::move(fn);
}

void Engine::invoke_on(int shard, Callback fn) {
  (void)shard;
  next_ = std::move(fn);
}

void Engine::run() {
  while (next_) {
    ticks_ += 1;
    Callback fn = std::move(next_);
    next_ = nullptr;
    fn();
  }
}

}  // namespace sim
