// Miniature engine for the confinement fixtures: just enough surface for
// the dispatch model — shard-targeted in/at/invoke_on overloads taking a
// work lambda, a run loop that invokes scheduled callbacks (so the
// shared-state audit's callback hub fires), and the control-shard id.
#pragma once

#include <functional>
#include <utility>

namespace sim {

using Callback = std::function<void()>;

inline constexpr int kControlShard = 0;

class Engine {
 public:
  void in(double delay, Callback fn);
  void in(int shard, double delay, Callback fn);
  void at(int shard, double when, Callback fn);
  void invoke_on(int shard, Callback fn);
  void run();

 private:
  Callback next_;
  long ticks_ = 0;
};

}  // namespace sim
