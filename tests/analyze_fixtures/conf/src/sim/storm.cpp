// Threaded storm root for the confinement fixtures: everything this file
// reaches runs under the storm's worker threads, so `verified
// threads-pinned` claims over reachable code must fail.
#include "sim/engine.hpp"
#include "sim/report.hpp"

namespace sim {

void run_storm(Engine* engine) {
  Reporter reporter;
  engine->run();
  reporter.flush();
}

}  // namespace sim
