// Seeded conf-cross-shard-write fixture: two writers, each reached from
// a single-key dispatch, but the keys differ (`left_` vs `right_`). A
// `verified shard-confined` claim over Mirror must fail — the state has
// no single home shard.
#pragma once

#include "sim/engine.hpp"

namespace sim {

class Mirror {
 public:
  explicit Mirror(Engine* engine) : engine_(engine) {}

  void record(double value);
  void replicate(double value);

 private:
  Engine* engine_;
  int left_ = 1;
  int right_ = 2;
  double sum_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace sim
