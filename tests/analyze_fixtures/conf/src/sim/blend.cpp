#include "sim/blend.hpp"

namespace sim {

void Blend::scatter(double value) {
  engine_->invoke_on(alpha_, [this, value] { fold(value); });
  engine_->invoke_on(beta_, [this, value] { fold(value); });
}

void Blend::fold(double value) { acc_ += value; }

}  // namespace sim
