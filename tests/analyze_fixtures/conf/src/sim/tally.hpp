// Positive shard-confined fixture: every write to ShardTally state is
// reached only through dispatches targeting the object's home shard
// (`shard_`), so the claim `* sim::ShardTally::* verified shard-confined`
// must prove.
#pragma once

#include "sim/engine.hpp"

namespace sim {

class ShardTally {
 public:
  explicit ShardTally(Engine* engine) : engine_(engine) {}

  void submit(double value);

 private:
  void apply(double value);

  Engine* engine_;
  int shard_ = 1;
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace sim
