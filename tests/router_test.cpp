// Tests for the router policies (static preference vs adaptive
// least-loaded selection, §6's "dynamic backend selection").
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/flotilla.hpp"

namespace flotilla::core {
namespace {

struct RouterFixture {
  Session session{platform::frontier_spec(), 8, 42};
  PilotManager pmgr{session};
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr;
  std::map<std::string, int> by_backend;

  explicit RouterFixture(RouterPolicy policy) {
    pilot = &pmgr.submit({.nodes = 8,
                          .backends = {{.type = "flux", .partitions = 1,
                                        .nodes = 4},
                                       {.type = "dragon", .nodes = 4}},
                          .router = policy});
    bool ok = false;
    pilot->launch([&](bool success, const std::string&) { ok = success; });
    session.run(240.0);
    EXPECT_TRUE(ok);
    tmgr = std::make_unique<TaskManager>(session, pilot->agent());
    tmgr->on_complete(
        [this](const Task& task) { ++by_backend[task.backend()]; });
  }

  void run_executables(int n) {
    for (int i = 0; i < n; ++i) {
      TaskDescription desc;
      desc.demand.cores = 1;
      desc.duration = 30.0;
      tmgr->submit(std::move(desc));
    }
    session.run();
  }
};

TEST(Router, StaticPolicySendsAllExecutablesToFirstBackend) {
  RouterFixture fx(RouterPolicy::kStatic);
  fx.run_executables(200);
  EXPECT_EQ(fx.by_backend["flux"], 200);
  EXPECT_EQ(fx.by_backend.count("dragon"), 0u);
}

TEST(Router, AdaptivePolicyBalancesAcrossCompatibleBackends) {
  RouterFixture fx(RouterPolicy::kAdaptive);
  fx.run_executables(400);
  EXPECT_EQ(fx.by_backend["flux"] + fx.by_backend["dragon"], 400);
  // Both backends accept executables; the least-loaded rule spreads work.
  EXPECT_GT(fx.by_backend["flux"], 50);
  EXPECT_GT(fx.by_backend["dragon"], 50);
}

TEST(Router, AdaptiveStillHonorsExplicitHints) {
  RouterFixture fx(RouterPolicy::kAdaptive);
  for (int i = 0; i < 50; ++i) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.backend_hint = "flux";
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  EXPECT_EQ(fx.by_backend["flux"], 50);
}

TEST(Router, AdaptiveRespectsModality) {
  RouterFixture fx(RouterPolicy::kAdaptive);
  for (int i = 0; i < 60; ++i) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.modality = platform::TaskModality::kFunction;  // flux can't
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  EXPECT_EQ(fx.by_backend["dragon"], 60);
  EXPECT_EQ(fx.by_backend.count("flux"), 0u);
}

}  // namespace
}  // namespace flotilla::core
