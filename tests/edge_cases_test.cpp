// Edge-case coverage across the simulated runtime systems and analytics:
// degenerate demands, parameter extremes, misuse, and the timeline sampler.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analytics/timeline.hpp"
#include "core/flotilla.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/instance.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "slurm/srun_backend.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace flotilla {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::frontier_calibration;
using platform::frontier_spec;

// ------------------------------------------------------------- flux edges

TEST(FluxEdge, SubmitBeforeBootstrapThrows) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  flux::Instance instance("flux.0", engine, cluster, {0, 1},
                          frontier_calibration().flux, 1);
  flux::Job job;
  job.id = "early";
  EXPECT_THROW(instance.submit(std::move(job)), util::Error);
}

TEST(FluxEdge, DoubleBootstrapThrows) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  flux::Instance instance("flux.0", engine, cluster, {0, 1},
                          frontier_calibration().flux, 1);
  instance.bootstrap([] {});
  EXPECT_THROW(instance.bootstrap([] {}), util::Error);
}

TEST(FluxEdge, ZeroDemandNullJobRuns) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  flux::Instance instance("flux.0", engine, cluster, {0, 1},
                          frontier_calibration().flux, 1);
  bool finished = false;
  instance.on_event([&](const flux::JobEvent& event) {
    if (event.kind == flux::JobEventKind::kFinish) finished = true;
  });
  instance.bootstrap([&] {
    flux::Job job;
    job.id = "null.0";
    job.demand.cores = 0;
    instance.submit(std::move(job));
  });
  engine.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.free_cores({0, 1}), 56);
}

TEST(FluxEdge, ExecParallelismPerNodeSpeedsSpawn) {
  auto rate_with = [](int parallel) {
    sim::Engine engine;
    Cluster cluster(frontier_spec(), 1);
    auto cal = frontier_calibration().flux;
    cal.exec_parallel_per_node = parallel;
    cal.jitter_cv = 0.0;
    cal.exec_coord_base = 0.0;  // keep rank 0 out of the way: spawn-bound
    flux::Instance instance("flux.0", engine, cluster, {0, 1}, cal, 1);
    sim::RateSeries starts(1.0);
    instance.on_event([&](const flux::JobEvent& event) {
      if (event.kind == flux::JobEventKind::kStart) {
        starts.record(engine.now());
      }
    });
    instance.bootstrap([&] {
      for (int i = 0; i < 500; ++i) {
        flux::Job job;
        job.id = util::cat("t.", i);
        job.demand.cores = 1;
        instance.submit(std::move(job));
      }
    });
    engine.run();
    return starts.window_rate();
  };
  EXPECT_NEAR(rate_with(2) / rate_with(1), 2.0, 0.3);
}

TEST(FluxEdge, CrashBeforeAnyJobIsClean) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  flux::Instance instance("flux.0", engine, cluster, {0, 2},
                          frontier_calibration().flux, 1);
  instance.bootstrap([] {});
  engine.run();
  instance.crash("idle crash");
  instance.crash("second crash is a no-op");
  EXPECT_FALSE(instance.healthy());
  EXPECT_EQ(instance.running_jobs(), 0u);
}

// ------------------------------------------------------------- srun edges

TEST(SrunEdge, GpuTasksHoldGpusForTheirLifetime) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  slurm::SrunBackend backend(engine, cluster, {0, 1},
                             frontier_calibration().slurm, 42);
  backend.bootstrap([](bool, const std::string&) {});
  engine.run(1.0);
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  platform::LaunchRequest req;
  req.id = "gpu.0";
  req.demand.cores = 1;
  req.demand.gpus = 8;
  req.duration = 100.0;
  backend.submit(std::move(req));
  engine.run(50.0);
  EXPECT_EQ(cluster.free_gpus({0, 1}), 0);
  engine.run();
  EXPECT_EQ(cluster.free_gpus({0, 1}), 8);
}

TEST(SrunEdge, BackoffGrowsGeometricallyUpToCap) {
  // White-box: three whole-node tasks serialize; the last one's retries
  // must span a geometric ladder, bounded by step_retry_max.
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  auto cal = frontier_calibration().slurm;
  slurm::SrunBackend backend(engine, cluster, {0, 1}, cal, 42);
  backend.bootstrap([](bool, const std::string&) {});
  engine.run(1.0);
  int done = 0;
  backend.on_task_complete(
      [&](const platform::LaunchOutcome&) { ++done; });
  for (int i = 0; i < 3; ++i) {
    platform::LaunchRequest req;
    req.id = util::cat("big.", i);
    req.demand.cores = 56;
    req.duration = 400.0;
    backend.submit(std::move(req));
  }
  engine.run();
  EXPECT_EQ(done, 3);
  // The third task waited ~800 s through retries; the controller served
  // far fewer retries than a fixed-interval poller would need, because the
  // backoff is capped geometric, not constant.
  const auto retries = backend.controller().retries_served();
  EXPECT_GT(retries, 5u);
  EXPECT_LT(retries, 200u);
}

// ----------------------------------------------------------- dragon edges

TEST(DragonEdge, FunctionTasksShareCoresWithExecTasks) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  dragon::DragonBackend backend(engine, cluster, {0, 1},
                                frontier_calibration().dragon, 42);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(30.0);
  ASSERT_TRUE(ready);
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  // 28 exec + 28 func tasks of 2 cores each exactly fill 56 cores x2.
  for (int i = 0; i < 56; ++i) {
    platform::LaunchRequest req;
    req.id = util::cat("t.", i);
    req.demand.cores = 2;
    req.duration = 50.0;
    req.modality = i % 2 ? platform::TaskModality::kFunction
                         : platform::TaskModality::kExecutable;
    backend.submit(std::move(req));
  }
  engine.run(engine.now() + 30.0);
  EXPECT_EQ(cluster.free_cores({0, 1}), 0);
  EXPECT_EQ(backend.runtime().running(), 28u);
  engine.run();
  EXPECT_EQ(cluster.free_cores({0, 1}), 56);
}

TEST(DragonEdge, PendingTasksSurviveLongOccupancy) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 1);
  dragon::DragonBackend backend(engine, cluster, {0, 1},
                                frontier_calibration().dragon, 42);
  backend.bootstrap([](bool, const std::string&) {});
  engine.run(30.0);
  std::vector<sim::Time> finish_times;
  backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    finish_times.push_back(outcome.finished);
  });
  platform::LaunchRequest hog;
  hog.id = "hog";
  hog.demand.cores = 56;
  hog.duration = 1000.0;
  backend.submit(std::move(hog));
  platform::LaunchRequest late;
  late.id = "late";
  late.demand.cores = 1;
  late.duration = 1.0;
  backend.submit(std::move(late));
  engine.run();
  ASSERT_EQ(finish_times.size(), 2u);
  EXPECT_GT(finish_times[1], 1000.0);  // waited for the hog
}

// -------------------------------------------------------------- timeline

TEST(Timeline, SamplesUntilPredicateStops) {
  core::Session session(frontier_spec(), 2, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 2, .backends = {{"flux", 1}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(120.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  analytics::Timeline timeline(session.engine(),
                               pilot.agent().profiler().metrics(), 10.0);
  for (int i = 0; i < 112; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 100.0;
    tmgr.submit(std::move(desc));
  }
  timeline.start([&] { return !tmgr.idle(); });
  session.run();
  ASSERT_GE(timeline.samples().size(), 5u);
  // The running series rises to ~112 and the launch-rate series sums to
  // the task count.
  double peak = 0, launches = 0;
  for (const double v : timeline.running_series()) peak = std::max(peak, v);
  for (const double r : timeline.launch_rate_series()) launches += r * 10.0;
  EXPECT_NEAR(peak, 112.0, 2.0);
  EXPECT_NEAR(launches, 112.0, 1.0);
  std::ostringstream csv;
  timeline.write_csv(csv);
  EXPECT_NE(csv.str().find("cores_busy"), std::string::npos);
}

TEST(Timeline, StepReportChunksWindows) {
  sim::Engine engine;
  analytics::RunMetrics metrics;
  analytics::Timeline timeline(engine, metrics, 10.0);
  // Launch 3 tasks at t=5 (cores 2 each), end them at t=35.
  engine.at(5.0, [&] {
    for (int i = 0; i < 3; ++i) metrics.on_launch(engine.now(), 2, 0);
  });
  engine.at(35.0, [&] {
    for (int i = 0; i < 3; ++i) metrics.on_attempt_end(engine.now(), 2, 0);
  });
  engine.at(60.0, [&] { timeline.stop(); });
  timeline.start();
  engine.run(100.0);
  const auto steps = analytics::step_report(timeline, 20.0);
  ASSERT_GE(steps.size(), 3u);
  // Window [0,20): samples at 0 (idle), 10 (3 running) -> mean 1.5.
  EXPECT_NEAR(steps[0].mean_tasks_running, 1.5, 0.01);
  EXPECT_NEAR(steps[0].mean_cores_busy, 3.0, 0.01);
  EXPECT_EQ(steps[0].launches, 3u);
  // Window [20,40): samples at 20,30 running -> mean 3.
  EXPECT_NEAR(steps[1].mean_tasks_running, 3.0, 0.01);
  // Window [40,60): drained.
  EXPECT_NEAR(steps[2].mean_tasks_running, 0.0, 0.01);
  EXPECT_EQ(steps[2].launches, 0u);
  EXPECT_THROW(analytics::step_report(timeline, 0.0), util::Error);
}

TEST(Timeline, StopEndsSampling) {
  sim::Engine engine;
  analytics::RunMetrics metrics;
  analytics::Timeline timeline(engine, metrics, 5.0);
  timeline.start();
  engine.at(22.0, [&] { timeline.stop(); });
  engine.run(100.0);
  // Samples at 0,5,10,15,20, then the 25 s tick observed stop.
  EXPECT_LE(timeline.samples().size(), 6u);
  EXPECT_GE(timeline.samples().size(), 5u);
  EXPECT_THROW(timeline.start(), util::Error);
}

}  // namespace
}  // namespace flotilla
