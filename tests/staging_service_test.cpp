// Tests for data staging (Fig 1: StagerInput/StagerOutput), service tasks
// (§2: persistent learners/replay buffers), and the RADICAL-Analytics-style
// session report.
#include <gtest/gtest.h>

#include <sstream>

#include "analytics/session_report.hpp"
#include "core/flotilla.hpp"
#include "core/service.hpp"
#include "util/error.hpp"

namespace flotilla::core {
namespace {

struct Fixture {
  Session session{platform::frontier_spec(), 4, 42};
  PilotManager pmgr{session};
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr;

  Fixture() {
    pilot = &pmgr.submit({.nodes = 4, .backends = {{"flux", 1}}});
    bool ok = false;
    pilot->launch([&](bool success, const std::string&) { ok = success; });
    session.run(240.0);
    EXPECT_TRUE(ok);
    tmgr = std::make_unique<TaskManager>(session, pilot->agent());
  }
};

// ----------------------------------------------------------------- staging

TEST(Staging, InputStagingDelaysExecutionByTransferTime) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  TaskDescription desc;
  desc.demand.cores = 1;
  desc.duration = 10.0;
  desc.input_mb = 16000.0;  // 10 s at 1600 MB/s per stream
  const auto uid = fx.tmgr->submit(std::move(desc));
  fx.session.run();
  const auto& task = fx.tmgr->task(uid);
  EXPECT_EQ(task.state(), TaskState::kDone);
  sim::Time t_stage = 0, t_sched = 0;
  ASSERT_TRUE(task.state_time(TaskState::kStagingInput, t_stage));
  ASSERT_TRUE(task.state_time(TaskState::kAgentScheduling, t_sched));
  EXPECT_NEAR(t_sched - t_stage, 10.0, 3.0);
}

TEST(Staging, OutputStagingDelaysFinalState) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  TaskDescription desc;
  desc.demand.cores = 1;
  desc.duration = 5.0;
  desc.output_mb = 8000.0;  // 5 s at 1600 MB/s
  const auto uid = fx.tmgr->submit(std::move(desc));
  fx.session.run();
  const auto& task = fx.tmgr->task(uid);
  sim::Time t_out = 0, t_done = 0;
  ASSERT_TRUE(task.state_time(TaskState::kStagingOutput, t_out));
  ASSERT_TRUE(task.state_time(TaskState::kDone, t_done));
  EXPECT_NEAR(t_done - t_out, 5.0, 1.5);
}

TEST(Staging, TasksWithoutDataSkipStagingStates) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  TaskDescription desc;
  desc.demand.cores = 1;
  const auto uid = fx.tmgr->submit(std::move(desc));
  fx.session.run();
  const auto& task = fx.tmgr->task(uid);
  sim::Time t = 0;
  EXPECT_FALSE(task.state_time(TaskState::kStagingInput, t));
  EXPECT_FALSE(task.state_time(TaskState::kStagingOutput, t));
  EXPECT_EQ(task.state(), TaskState::kDone);
}

TEST(Staging, StagerStreamsLimitConcurrentTransfers) {
  // 8 transfers of ~10 s each on 4 stager streams take ~2 batches.
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  std::vector<std::string> uids;
  for (int i = 0; i < 8; ++i) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 1.0;
    desc.input_mb = 16000.0;
    uids.push_back(fx.tmgr->submit(std::move(desc)));
  }
  fx.session.run();
  sim::Time last_sched = 0, first_stage = sim::kInfiniteTime;
  for (const auto& uid : uids) {
    sim::Time t0 = 0, t1 = 0;
    ASSERT_TRUE(fx.tmgr->task(uid).state_time(TaskState::kStagingInput, t0));
    ASSERT_TRUE(
        fx.tmgr->task(uid).state_time(TaskState::kAgentScheduling, t1));
    first_stage = std::min(first_stage, t0);
    last_sched = std::max(last_sched, t1);
  }
  // Two sequential waves of ~10 s, not eight and not one.
  EXPECT_GT(last_sched - first_stage, 15.0);
  EXPECT_LT(last_sched - first_stage, 35.0);
}

TEST(Staging, RetriedTasksDoNotRestageInput) {
  Fixture fx;
  int attempts_seen = 0;
  fx.tmgr->on_complete(
      [&](const Task& task) { attempts_seen = task.attempts(); });
  TaskDescription desc;
  desc.demand.cores = 1;
  desc.input_mb = 100.0;
  desc.fail_probability = 0.7;
  desc.max_retries = 10;
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_GE(attempts_seen, 1);
  // Completion implies the state machine accepted retry loops around the
  // staging states (no invalid-transition throw happened).
}

// ---------------------------------------------------------------- services

TEST(Services, ReadyAfterStartupDelay) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  ServiceManager services(fx.session, *fx.tmgr);
  sim::Time ready_at = -1.0;
  ServiceDescription svc;
  svc.name = "replay-buffer";
  svc.demand.cores = 4;
  svc.lifetime = 500.0;
  svc.startup_delay = 7.0;
  services.start(std::move(svc), [&] { ready_at = fx.session.now(); });
  EXPECT_FALSE(services.ready("replay-buffer"));
  fx.session.run();
  EXPECT_GT(ready_at, 7.0);
  EXPECT_FALSE(services.running("replay-buffer"));  // lifetime elapsed
}

TEST(Services, WhenReadyGatesDependentWork) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  ServiceManager services(fx.session, *fx.tmgr);
  ServiceDescription svc;
  svc.name = "learner";
  svc.demand.cores = 8;
  svc.lifetime = 300.0;
  svc.startup_delay = 5.0;
  services.start(std::move(svc));

  std::string worker_uid;
  services.when_ready("learner", [&] {
    EXPECT_TRUE(services.ready("learner"));
    TaskDescription worker;
    worker.demand.cores = 1;
    worker.duration = 10.0;
    worker_uid = fx.tmgr->submit(std::move(worker));
  });
  fx.session.run();
  ASSERT_FALSE(worker_uid.empty());
  EXPECT_EQ(fx.tmgr->task(worker_uid).state(), TaskState::kDone);
  // Worker started only after the service endpoint was up.
  sim::Time service_ready_earliest = 5.0;
  sim::Time worker_start = 0;
  ASSERT_TRUE(fx.tmgr->task(worker_uid)
                  .state_time(TaskState::kRunning, worker_start));
  EXPECT_GT(worker_start, service_ready_earliest);
}

TEST(Services, WhenReadyAfterReadinessFiresImmediately) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  ServiceManager services(fx.session, *fx.tmgr);
  ServiceDescription svc;
  svc.name = "db";
  svc.demand.cores = 1;
  svc.lifetime = 1000.0;
  services.start(std::move(svc));
  fx.session.run(100.0);
  ASSERT_TRUE(services.ready("db"));
  bool fired = false;
  services.when_ready("db", [&] { fired = true; });
  fx.session.run(101.0);
  EXPECT_TRUE(fired);
}

TEST(Services, DuplicateAndUnknownNamesThrow) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  ServiceManager services(fx.session, *fx.tmgr);
  ServiceDescription svc;
  svc.name = "x";
  svc.demand.cores = 1;
  services.start(svc);
  EXPECT_THROW(services.start(svc), util::Error);
  EXPECT_THROW(services.when_ready("nope", [] {}), util::Error);
  EXPECT_FALSE(services.ready("nope"));
}

// ----------------------------------------------------------- session report

TEST(SessionReport, BreaksDownTaskLifecycles) {
  Fixture fx;
  fx.tmgr->on_complete([](const Task&) {});
  for (int i = 0; i < 50; ++i) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 60.0;
    desc.input_mb = 800.0;   // 0.5 s stage-in
    desc.output_mb = 160.0;  // 0.1 s stage-out
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();

  analytics::SessionReport report;
  fx.tmgr->for_each_task(
      [&](const Task& task) { report.add(task); });
  EXPECT_EQ(report.tasks(), 50u);
  EXPECT_EQ(report.failed(), 0u);
  EXPECT_NEAR(report.mean_execution(), 60.0, 2.0);
  EXPECT_GT(report.mean_overhead(), 0.1);  // staging dominates overhead
  EXPECT_LT(report.overhead_fraction(), 0.3);

  bool saw_staging = false, saw_exec = false;
  for (const auto& phase : report.phases()) {
    if (phase.name == "staging_input") {
      saw_staging = true;
      EXPECT_EQ(phase.dwell.count(), 50u);
      // Dwell includes queueing for a stager stream: 50 transfers of
      // ~0.5 s over 4 streams wait ~3 s on average.
      EXPECT_GT(phase.dwell.mean(), 0.5);
      EXPECT_LT(phase.dwell.mean(), 0.5 * 50.0 / 4.0);
    }
    if (phase.name == "execution") saw_exec = true;
  }
  EXPECT_TRUE(saw_staging);
  EXPECT_TRUE(saw_exec);

  std::ostringstream text, csv;
  report.print(text);
  report.write_csv(csv);
  EXPECT_NE(text.str().find("execution"), std::string::npos);
  EXPECT_NE(csv.str().find("staging_input"), std::string::npos);
}

TEST(SessionReport, CountsFailuresAndSkipsUnfinishedTasks) {
  analytics::SessionReport report;
  Task unfinished("task.x", {});
  unfinished.advance(TaskState::kTmgrScheduling, 1.0);
  report.add(unfinished);
  EXPECT_EQ(report.tasks(), 0u);

  Task failed("task.y", {});
  failed.advance(TaskState::kTmgrScheduling, 1.0);
  failed.advance(TaskState::kFailed, 2.0);
  report.add(failed);
  EXPECT_EQ(report.tasks(), 1u);
  EXPECT_EQ(report.failed(), 1u);
}

}  // namespace
}  // namespace flotilla::core
