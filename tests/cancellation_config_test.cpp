// Tests for cooperative task cancellation and the config-driven
// platform/calibration definitions.
#include <gtest/gtest.h>

#include <string>

#include "core/flotilla.hpp"
#include "platform/spec_config.hpp"
#include "util/error.hpp"

namespace flotilla {
namespace {

// ------------------------------------------------------------ cancellation

struct CancelFixture {
  core::Session session{platform::frontier_spec(), 4, 42};
  core::PilotManager pmgr{session};
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;

  explicit CancelFixture(const std::string& backend = "flux") {
    core::PilotDescription desc;
    desc.nodes = 4;
    if (backend == "flux") {
      desc.backends = {{.type = "flux", .partitions = 1}};
    } else {
      desc.backends = {{backend}};
    }
    pilot = &pmgr.submit(std::move(desc));
    pilot->launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }

  std::string submit_one(double duration, std::int64_t cores = 1) {
    core::TaskDescription desc;
    desc.demand.cores = cores;
    desc.duration = duration;
    return tmgr->submit(std::move(desc));
  }
};

TEST(Cancellation, PendingTaskCancelsBeforeLaunch) {
  CancelFixture fx;
  const auto uid = fx.submit_one(100.0);
  EXPECT_TRUE(fx.tmgr->cancel(uid));  // still in TMGR intake
  fx.session.run();
  const auto& task = fx.tmgr->task(uid);
  EXPECT_EQ(task.state(), core::TaskState::kCanceled);
  sim::Time t = 0;
  EXPECT_FALSE(task.state_time(core::TaskState::kRunning, t));
  // Resources untouched.
  EXPECT_EQ(fx.session.cluster().free_cores({0, 4}), 224);
}

TEST(Cancellation, RunningTaskCancelsAtPayloadEnd) {
  CancelFixture fx;
  const auto uid = fx.submit_one(50.0);
  fx.session.run(fx.session.now() + 30.0);  // task is running
  EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kRunning);
  EXPECT_TRUE(fx.tmgr->cancel(uid));
  fx.session.run();
  EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kCanceled);
  EXPECT_EQ(fx.session.cluster().free_cores({0, 4}), 224);
}

TEST(Cancellation, WaitlistedPrrteTaskCancelsImmediately) {
  CancelFixture fx("prrte");
  // Fill the machine, then waitlist one more whole-node task.
  for (int i = 0; i < 4; ++i) {
    core::TaskDescription big;
    big.demand.cores = 56;
    big.demand.cores_per_node = 56;
    big.duration = 500.0;
    fx.tmgr->submit(std::move(big));
  }
  core::TaskDescription extra;
  extra.demand.cores = 56;
  extra.demand.cores_per_node = 56;
  extra.duration = 500.0;
  const auto uid = fx.tmgr->submit(std::move(extra));
  fx.session.run(fx.session.now() + 60.0);
  EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kExecutorPending);
  const sim::Time before = fx.session.now();
  EXPECT_TRUE(fx.tmgr->cancel(uid));
  fx.session.run(before + 1.0);
  EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kCanceled);
}

TEST(Cancellation, UnknownAndFinalTasksReturnFalse) {
  CancelFixture fx;
  EXPECT_FALSE(fx.tmgr->cancel("task.999999"));
  const auto uid = fx.submit_one(1.0);
  fx.session.run();
  EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kDone);
  EXPECT_FALSE(fx.tmgr->cancel(uid));
}

TEST(Cancellation, CanceledTasksDoNotRetry) {
  CancelFixture fx;
  core::TaskDescription desc;
  desc.demand.cores = 1;
  desc.duration = 30.0;
  desc.fail_probability = 1.0;  // would retry forever without cancel
  desc.max_retries = 100;
  const auto uid = fx.tmgr->submit(std::move(desc));
  fx.session.run(fx.session.now() + 10.0);
  fx.tmgr->cancel(uid);
  fx.session.run();
  const auto& task = fx.tmgr->task(uid);
  EXPECT_EQ(task.state(), core::TaskState::kCanceled);
  EXPECT_LE(task.attempts(), 2);
}

// ----------------------------------------------------------- spec config

TEST(SpecConfig, SummitProfileMatchesPriorWorkPlatform) {
  const auto spec = platform::summit_spec();
  EXPECT_EQ(spec.cores_per_node, 42);
  EXPECT_EQ(spec.gpus_per_node, 6);
  EXPECT_GT(spec.srun_concurrency_ceiling, 100000);  // LSF: no ceiling
}

TEST(SpecConfig, SpecByNameAndUnknownName) {
  EXPECT_EQ(platform::spec_by_name("frontier").cores_per_node, 56);
  EXPECT_EQ(platform::spec_by_name("summit").name, "summit");
  EXPECT_THROW(platform::spec_by_name("perlmutter"), util::Error);
}

TEST(SpecConfig, BuildsSpecFromConfigWithOverrides) {
  const auto config = util::Config::from_pairs(
      {"platform.name=frontier", "platform.cores_per_node=32",
       "platform.srun_ceiling=0"});
  const auto spec = platform::spec_from_config(config);
  EXPECT_EQ(spec.name, "frontier");
  EXPECT_EQ(spec.cores_per_node, 32);       // overridden
  EXPECT_EQ(spec.gpus_per_node, 8);         // inherited
  EXPECT_GT(spec.srun_concurrency_ceiling, 100000);  // 0 => unlimited
}

TEST(SpecConfig, RejectsUnknownPlatformKeys) {
  const auto config =
      util::Config::from_pairs({"platform.coresper_node=32"});
  EXPECT_THROW(platform::spec_from_config(config), util::Error);
}

TEST(SpecConfig, CalibrationOverridesApply) {
  const auto config = util::Config::from_pairs(
      {"flux.exec_spawn=0.050", "slurm.ctl_step_base=0.010",
       "core.tmgr_task_cost=0.001"});
  const auto cal = platform::calibration_from_config(config);
  EXPECT_DOUBLE_EQ(cal.flux.exec_spawn, 0.050);
  EXPECT_DOUBLE_EQ(cal.slurm.ctl_step_base, 0.010);
  EXPECT_DOUBLE_EQ(cal.core.tmgr_task_cost, 0.001);
  // Untouched keys keep their Frontier defaults.
  EXPECT_DOUBLE_EQ(cal.dragon.dispatch_func, 1.00e-3);
}

TEST(SpecConfig, RejectsUnknownCalibrationKeys) {
  const auto config = util::Config::from_pairs({"flux.exec_spwan=0.05"});
  EXPECT_THROW(platform::calibration_from_config(config), util::Error);
}

TEST(SpecConfig, SummitSessionRunsEndToEnd) {
  // A Summit-profile pilot executes a workload: 42-core nodes, no srun
  // ceiling (the Fig 4 plateau disappears).
  core::Session session(platform::summit_spec(), 4, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 4, .backends = {{"srun"}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(10.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  for (int i = 0; i < 336; ++i) {  // 2 waves of 168 cores
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 60.0;
    tmgr.submit(std::move(desc));
  }
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  EXPECT_EQ(metrics.tasks_done(), 336u);
  EXPECT_EQ(pilot.total_cores(), 168);
  // No 112-ceiling: concurrency reaches the full 168 cores.
  EXPECT_NEAR(metrics.peak_concurrency(), 168.0, 1.0);
}

}  // namespace
}  // namespace flotilla
