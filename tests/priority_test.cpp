// Tests for priority (urgency) scheduling, Poisson arrivals, and the file
// log sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "util/logging.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/trace_replay.hpp"

namespace flotilla {
namespace {

struct PriorityFixture {
  core::Session session{platform::frontier_spec(), 1, 42};
  core::PilotManager pmgr{session};
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;

  PriorityFixture() {
    pilot = &pmgr.submit({.nodes = 1, .backends = {{"flux", 1}}});
    pilot->launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }
};

TEST(Priority, UrgentTasksJumpTheQueue) {
  PriorityFixture fx;
  std::vector<std::string> start_order;
  fx.pilot->agent().on_task_start([&](const core::Task& task) {
    start_order.push_back(task.description().name);
  });
  fx.tmgr->on_complete([](const core::Task&) {});
  // Saturate the node so a queue forms, then submit a low and a high
  // priority task; the high one must start first despite arriving last.
  for (int i = 0; i < 56; ++i) {
    core::TaskDescription filler;
    filler.name = "filler";
    filler.demand.cores = 1;
    filler.duration = 120.0;
    fx.tmgr->submit(std::move(filler));
  }
  core::TaskDescription low;
  low.name = "low";
  low.demand.cores = 56;
  low.duration = 10.0;
  low.priority = 8;
  fx.tmgr->submit(std::move(low));
  core::TaskDescription high;
  high.name = "high";
  high.demand.cores = 56;
  high.duration = 10.0;
  high.priority = 31;
  fx.tmgr->submit(std::move(high));
  fx.session.run();

  long pos_high = -1, pos_low = -1;
  for (std::size_t i = 0; i < start_order.size(); ++i) {
    if (start_order[i] == "high") pos_high = static_cast<long>(i);
    if (start_order[i] == "low") pos_low = static_cast<long>(i);
  }
  ASSERT_GE(pos_high, 0);
  ASSERT_GE(pos_low, 0);
  EXPECT_LT(pos_high, pos_low);
}

TEST(Priority, EqualPrioritiesKeepFifoOrder) {
  PriorityFixture fx;
  std::vector<std::string> start_order;
  fx.pilot->agent().on_task_start([&](const core::Task& task) {
    start_order.push_back(task.description().name);
  });
  fx.tmgr->on_complete([](const core::Task&) {});
  for (int i = 0; i < 20; ++i) {
    core::TaskDescription desc;
    desc.name = "t" + std::to_string(i);
    desc.demand.cores = 56;  // strictly serialized
    desc.duration = 5.0;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run();
  ASSERT_EQ(start_order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(start_order[static_cast<size_t>(i)],
              "t" + std::to_string(i));
  }
}

// ------------------------------------------------------- poisson arrivals

TEST(PoissonArrivals, InterArrivalsMatchRate) {
  core::TaskDescription proto;
  proto.demand.cores = 1;
  proto.duration = 1.0;
  const auto entries = workloads::poisson_arrivals(5000, 25.0, proto, 7);
  ASSERT_EQ(entries.size(), 5000u);
  // Arrival times strictly increase; mean inter-arrival ~ 1/25 s.
  double prev = -1.0;
  for (const auto& entry : entries) {
    EXPECT_GT(entry.submit_time, prev);
    prev = entry.submit_time;
  }
  EXPECT_NEAR(entries.back().submit_time, 5000.0 / 25.0, 15.0);
}

TEST(PoissonArrivals, ReplayDrivesOpenArrivalRun) {
  core::Session session(platform::frontier_spec(), 4, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 4, .backends = {{"dragon"}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(60.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});

  core::TaskDescription proto;
  proto.demand.cores = 1;
  proto.duration = 2.0;
  proto.modality = platform::TaskModality::kFunction;
  workloads::replay(tmgr,
                    workloads::poisson_arrivals(800, 40.0, proto, 9),
                    session.now());
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  EXPECT_EQ(metrics.tasks_done(), 800u);
  // Open system below capacity: launch rate tracks the arrival rate.
  EXPECT_NEAR(metrics.window_throughput(), 40.0, 6.0);
}

// -------------------------------------------------------------- file sink

TEST(FileSink, AppendsAndFlushesLines) {
  const std::string path = "filesink_test.log";
  std::remove(path.c_str());
  {
    auto sink = std::make_shared<util::FileSink>(path);
    ASSERT_TRUE(sink->ok());
    util::LogRegistry::instance().set_sink(sink);
    util::LogRegistry::instance().set_level(util::LogLevel::kInfo);
    util::Logger log("agent");
    log.info("pilot ", "p.0", " active");
    log.warn("backend lost");
    util::LogRegistry::instance().set_sink(nullptr);
  }
  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, "[INFO] agent: pilot p.0 active");
  EXPECT_EQ(line2, "[WARN] agent: backend lost");
  std::remove(path.c_str());
}

TEST(FileSink, UnwritablePathReportsNotOk) {
  util::FileSink sink("/nonexistent-dir-xyz/log.txt");
  EXPECT_FALSE(sink.ok());
  sink.write("dropped");  // no crash
}

}  // namespace
}  // namespace flotilla
