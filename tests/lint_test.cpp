// Tests for flotilla-lint, the DES determinism checker (tools/
// flotilla_lint.cpp). The fixture tree under tests/lint_fixtures/ mirrors
// src/ so the scanner's scope rules apply to it exactly as they do to the
// real tree; each fixture file holds one violation class (or a deliberate
// counter-example), and this test asserts the checker's exact diagnostics.
//
// FLOTILLA_LINT_BIN, FLOTILLA_LINT_FIXTURES and FLOTILLA_SRC_DIR are
// injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, split on newlines
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(FLOTILLA_LINT_BIN) + " " + args +
                          " 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  RunResult result;
  if (pipe == nullptr) return result;
  std::string output;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::size_t begin = 0;
  while (begin < output.size()) {
    std::size_t end = output.find('\n', begin);
    if (end == std::string::npos) end = output.size();
    if (end > begin) result.lines.push_back(output.substr(begin, end - begin));
    begin = end + 1;
  }
  return result;
}

std::string fixture(const std::string& rel) {
  return std::string(FLOTILLA_LINT_FIXTURES) + "/" + rel;
}

std::string diag(const std::string& rel, int line, const std::string& rule,
                 const std::string& message) {
  return fixture(rel) + ":" + std::to_string(line) + ": error: [" + rule +
         "] " + message;
}

const char* const kWallClockMsg =
    "wall-clock time in simulation code breaks determinism; use "
    "sim::Engine::now()";
const char* const kRandomMsg =
    "nondeterministic randomness in simulation code; draw from a seeded "
    "sim::RngStream";

TEST(LintTest, FixtureScanReportsExactDiagnostics) {
  const RunResult result = run_lint(FLOTILLA_LINT_FIXTURES);
  EXPECT_EQ(result.exit_code, 1);

  const std::vector<std::string> expected = {
      diag("src/core/bad_random.cpp", 8, "unseeded-random", kRandomMsg),
      diag("src/core/bad_random.cpp", 14, "unseeded-random", kRandomMsg),
      diag("src/core/bad_random.cpp", 15, "unseeded-random", kRandomMsg),
      diag("src/dragon/sim_backend.cpp", 9, "wall-clock", kWallClockMsg),
      diag("src/flux/bad_sleep.cpp", 8, "real-sleep",
           "real sleeping in simulation code; model delays as simulated "
           "events"),
      diag("src/platform/bad_hw_concurrency.cpp", 8, "hardware-concurrency",
           "host-dependent concurrency breaks reproducibility; take worker "
           "counts from configuration"),
      diag("src/sim/bad_wall_clock.cpp", 8, "wall-clock", kWallClockMsg),
      diag("src/sim/bad_wall_clock.cpp", 13, "wall-clock", kWallClockMsg),
      diag("src/sim/bad_wall_clock.cpp", 15, "wall-clock", kWallClockMsg),
      diag("src/sim/bad_wall_clock.cpp", 20, "wall-clock", kWallClockMsg),
      diag("src/slurm/bad_unordered.cpp", 18, "unordered-iteration",
           "iteration over unordered container 'active_' can feed event "
           "ordering; iterate util::sorted_keys() or use an ordered "
           "container"),
      diag("src/slurm/bad_unordered.cpp", 22, "unordered-iteration",
           "iteration over unordered container 'drained' can feed event "
           "ordering; iterate util::sorted_keys() or use an ordered "
           "container"),
      diag("src/workloads/waived.cpp", 13, "wall-clock", kWallClockMsg),
  };
  EXPECT_EQ(result.lines, expected);
}

// A well-formed waiver (rule id + reason) suppresses; one without a reason
// does not — waived.cpp line 9 is absent above, line 13 present.
TEST(LintTest, WaiverRequiresReason) {
  const RunResult result = run_lint(fixture("src/workloads/waived.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0],
            diag("src/workloads/waived.cpp", 13, "wall-clock", kWallClockMsg));
}

// Directory scans skip non-backend dragon files (threaded layer), but an
// explicit file argument is always checked.
TEST(LintTest, ExplicitFileBypassesScope) {
  const RunResult result = run_lint(fixture("src/dragon/thread_helper.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], diag("src/dragon/thread_helper.cpp", 10,
                                  "wall-clock", kWallClockMsg));
}

// The allowlisted execution layer is never checked, even when named
// directly.
TEST(LintTest, AllowlistHoldsForExplicitFiles) {
  const RunResult result = run_lint(fixture("src/util/logging.cpp"));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
}

// Counter-example file: comments, string literals, and sorted iteration
// must produce no diagnostics.
TEST(LintTest, CleanFixtureIsClean) {
  const RunResult result = run_lint(fixture("src/core/clean_component.cpp"));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
}

// The real tree must stay clean — this is the same gate CI runs.
TEST(LintTest, RepoSourceTreeIsClean) {
  const RunResult result = run_lint(FLOTILLA_SRC_DIR);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.lines.empty());
}

TEST(LintTest, ListRulesNamesEveryRule) {
  const RunResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  const std::vector<std::string> expected = {
      "hardware-concurrency", "real-sleep", "unordered-iteration",
      "unseeded-random", "wall-clock"};
  EXPECT_EQ(result.lines, expected);
}

}  // namespace
