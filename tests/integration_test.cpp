// Full-system integration tests: everything at once — a hybrid
// four-backend pilot, services, staged data, an adaptive workflow with
// heterogeneous tasks, failure injection, mid-run faults, the timeline
// sampler and the session report.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analytics/session_report.hpp"
#include "analytics/timeline.hpp"
#include "core/flotilla.hpp"
#include "core/service.hpp"
#include "flux/flux_backend.hpp"
#include "flux/instance.hpp"
#include "util/strfmt.hpp"

namespace flotilla {
namespace {

TEST(Integration, HybridCampaignWithServicesFaultsAndStaging) {
  core::Session session(platform::frontier_spec(), 32, 2026);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({
      .nodes = 32,
      .backends = {{.type = "flux", .partitions = 2, .nodes = 16},
                   {.type = "dragon", .partitions = 2, .nodes = 8},
                   {.type = "prrte", .nodes = 8}},
      .router = core::RouterPolicy::kStatic,
  });
  bool ready = false;
  pilot.launch([&](bool ok, const std::string&) { ready = ok; });
  session.run(240.0);
  ASSERT_TRUE(ready);
  ASSERT_EQ(pilot.agent().backend_names(),
            (std::vector<std::string>{"flux", "dragon", "prrte"}));

  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);
  core::ServiceManager services(session, tmgr);

  // A persistent in-memory service gates the analysis stage.
  core::ServiceDescription learner;
  learner.name = "learner";
  learner.demand.cores = 4;
  learner.demand.gpus = 4;
  learner.lifetime = 5000.0;
  learner.startup_delay = 10.0;
  learner.modality = platform::TaskModality::kFunction;  // runs on dragon
  services.start(learner);

  // Simulation ensemble: executables with staged inputs and flaky nodes.
  std::vector<core::TaskDescription> sims;
  for (int i = 0; i < 60; ++i) {
    core::TaskDescription sim;
    sim.name = util::cat("sim.", i);
    sim.demand.cores = 14;
    sim.duration = 120.0;
    sim.input_mb = 160.0;
    sim.output_mb = 320.0;
    sim.fail_probability = 0.1;
    sim.max_retries = 3;
    sims.push_back(std::move(sim));
  }
  workflow.add_stage("simulate", std::move(sims));

  // MPI scoring after the ensemble (tightly coupled, multi-node).
  std::vector<core::TaskDescription> scoring;
  for (int i = 0; i < 4; ++i) {
    core::TaskDescription score;
    score.name = util::cat("score.", i);
    score.demand.cores = 112;
    score.demand.cores_per_node = 56;
    score.duration = 90.0;
    score.max_retries = 2;
    scoring.push_back(std::move(score));
  }
  workflow.add_stage("score", std::move(scoring), {"simulate"});

  // Inference burst (functions) after scoring.
  std::vector<core::TaskDescription> inference;
  for (int i = 0; i < 200; ++i) {
    core::TaskDescription infer;
    infer.name = util::cat("infer.", i);
    infer.modality = platform::TaskModality::kFunction;
    infer.demand.cores = 1;
    infer.duration = 3.0;
    inference.push_back(std::move(infer));
  }
  workflow.add_stage("analyze", std::move(inference), {"score"});

  // Timeline sampling for the whole run.
  const auto& metrics = pilot.agent().profiler().metrics();
  analytics::Timeline timeline(session.engine(), metrics, 30.0);
  bool drained = false;
  workflow.on_drained([&] { drained = true; });
  timeline.start([&] { return !drained; });

  // The workflow starts once the learner service is up; one flux broker
  // dies mid-ensemble.
  services.when_ready("learner", [&] { workflow.start(); });
  session.run(session.now() + 120.0);
  auto* fluxb =
      dynamic_cast<flux::FluxBackend*>(pilot.agent().backend("flux"));
  ASSERT_NE(fluxb, nullptr);
  fluxb->crash_instance(0, "integration-test fault");
  session.run();

  // --- outcome checks ---------------------------------------------------
  EXPECT_TRUE(drained);
  EXPECT_EQ(workflow.stages_completed(), 3u);
  // Everything recovered through retries/failover despite the crash and
  // the 10% failure injection.
  EXPECT_EQ(metrics.tasks_done(), 60u + 4u + 200u + 1u /*service*/);
  EXPECT_EQ(metrics.tasks_failed(), 0u);
  EXPECT_GT(metrics.tasks_retried(), 0u);

  // All resources returned.
  EXPECT_EQ(session.cluster().free_cores({0, 32}), 32 * 56);
  EXPECT_EQ(session.cluster().free_gpus({0, 32}), 32 * 8);

  // Timeline saw real concurrency and then the drain.
  double peak = 0;
  for (const auto& s : timeline.samples()) {
    peak = std::max(peak, s.tasks_running);
  }
  EXPECT_GT(peak, 10.0);
  std::ostringstream csv;
  timeline.write_csv(csv);
  EXPECT_NE(csv.str().find("tasks_running"), std::string::npos);

  // Session report covers every finished task with sane phases.
  analytics::SessionReport report;
  tmgr.for_each_task([&](const core::Task& task) { report.add(task); });
  EXPECT_EQ(report.tasks(), 265u);
  EXPECT_GT(report.mean_execution(), 1.0);
}

TEST(Integration, FluxEventlogRecordsLifecOrder) {
  sim::Engine engine;
  platform::Cluster cluster(platform::frontier_spec(), 2);
  flux::Instance instance("flux.0", engine, cluster, {0, 2},
                          platform::frontier_calibration().flux, 3);
  instance.record_eventlogs = true;
  instance.on_event([](const flux::JobEvent&) {});
  instance.bootstrap([&] {
    flux::Job job;
    job.id = "job.0";
    job.demand.cores = 8;
    job.duration = 25.0;
    instance.submit(std::move(job));
  });
  engine.run();
  const auto& log = instance.eventlog("job.0");
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].second, "submit");
  EXPECT_EQ(log[1].second, "alloc");
  EXPECT_EQ(log[2].second, "start");
  EXPECT_EQ(log[3].second, "finish");
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].first, log[i - 1].first);
  }
  EXPECT_NEAR(log[3].first - log[2].first, 25.0, 0.5);
  EXPECT_TRUE(instance.eventlog("nope").empty());
}

TEST(Integration, FluxInstancesAndSrunTasksShareTheCeiling) {
  // §4.1.3: "because each Flux instance is launched via srun, this
  // experiment is subject to Frontier's limit of 112 concurrent srun
  // invocations". A pilot mixing flux partitions and an srun backend must
  // draw both from one allocation-wide ceiling.
  auto spec = platform::frontier_spec();
  spec.srun_concurrency_ceiling = 20;  // tiny ceiling to force contention
  core::Session session(spec, 8, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8,
       .backends = {{.type = "flux", .partitions = 4, .nodes = 4},
                    {.type = "srun", .nodes = 4}}});
  bool ready = false;
  pilot.launch([&](bool ok, const std::string&) { ready = ok; });
  session.run(240.0);
  ASSERT_TRUE(ready);
  // 4 flux instances hold 4 of the 20 slots for their lifetime.
  EXPECT_EQ(pilot.srun_ceiling().in_use(), 4);

  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  // srun tasks can use at most the remaining 16 slots concurrently.
  for (int i = 0; i < 40; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 100.0;
    desc.backend_hint = "srun";
    tmgr.submit(std::move(desc));
  }
  session.run(session.now() + 150.0);
  const auto& metrics = pilot.agent().profiler().metrics();
  EXPECT_LE(metrics.peak_concurrency(), 16.0);  // 20 - 4 instance slots
  session.run();
  EXPECT_EQ(metrics.tasks_done(), 40u);
}

}  // namespace
}  // namespace flotilla
