// src/obs: tracer ring-buffer semantics, span invariants over a real
// session, exporter well-formedness and determinism, and the
// OverheadReport identity against hand-computed spans.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/flotilla.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

namespace flotilla::obs {
namespace {

// ---------------------------------------------------------------------------
// Ring buffer overflow policy.

TEST(TracerRing, DropOldestKeepsNewestRecords) {
  sim::Engine engine;
  Tracer tracer(engine, 4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant(SpanType::kRouting, "c", std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Retained records are the newest four, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tracer.at(i).entity, std::to_string(6 + i));
  }
}

TEST(TracerRing, NoDropBelowCapacity) {
  sim::Engine engine;
  Tracer tracer(engine, 8);
  tracer.begin(SpanType::kTaskRun, "c", "t");
  tracer.end(SpanType::kTaskRun, "c", "t");
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.at(0).kind, RecordKind::kBegin);
  EXPECT_EQ(tracer.at(1).kind, RecordKind::kEnd);
}

TEST(TracerRing, ClearResets) {
  sim::Engine engine;
  Tracer tracer(engine, 2);
  for (int i = 0; i < 5; ++i) tracer.instant(SpanType::kRouting, "c", "e");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerHandle, NullHandleIsInert) {
  TraceHandle handle;
  EXPECT_FALSE(handle.enabled());
  // Must not crash.
  handle.begin(SpanType::kTaskRun, "c", "t");
  handle.end(SpanType::kTaskRun, "c", "t");
  handle.instant(SpanType::kRouting, "c", "t");
  handle.counter("c", "n", 1.0);
}

// ---------------------------------------------------------------------------
// Session helper: a small traced run.

core::Session make_session(std::uint64_t seed) {
  return core::Session(platform::frontier_spec(), 4, seed);
}

// Runs `tasks` one-core tasks through `backend` with tracing on and
// returns the session (whose tracer holds the trace).
std::string run_traced(const std::string& backend, std::uint64_t seed,
                       int tasks, bool prof, Tracer** out_tracer = nullptr,
                       core::Session* session_out = nullptr) {
  core::Session local_session = make_session(seed);
  core::Session& session = session_out ? *session_out : local_session;
  session.enable_tracing();
  core::PilotManager pmgr(session);
  core::PilotDescription desc;
  desc.nodes = 4;
  if (backend == "hybrid") {
    desc.backends = {{.type = "flux", .partitions = 1, .nodes = 2},
                     {.type = "dragon", .partitions = 1, .nodes = 2}};
  } else if (backend == "flux") {
    desc.backends = {{.type = "flux", .partitions = 2}};
  } else {
    desc.backends = {{backend}};
  }
  auto& pilot = pmgr.submit(std::move(desc));
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  for (int i = 0; i < tasks; ++i) {
    core::TaskDescription task;
    task.demand.cores = 1;
    task.duration = 5.0;
    tmgr.submit(std::move(task));
  }
  session.run();
  if (out_tracer) *out_tracer = session.tracer();
  std::ostringstream os;
  if (prof) {
    write_prof(*session.tracer(), os);
  } else {
    write_chrome_trace(*session.tracer(), os);
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Span nesting / ordering invariants over a real run.

TEST(TraceInvariants, TimesMonotoneAndSpansBalanced) {
  core::Session session = make_session(7);
  std::string ignored = run_traced("flux", 7, 40, /*prof=*/false, nullptr,
                                   &session);
  const Tracer& tracer = *session.tracer();
  ASSERT_GT(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  sim::Time last = 0.0;
  // Open-begin depth per (type, component, entity).
  std::map<std::tuple<int, std::string, std::string>, int> depth;
  tracer.for_each([&](const Record& record) {
    EXPECT_GE(record.time, last) << "virtual time went backwards";
    last = record.time;
    const auto key = std::make_tuple(static_cast<int>(record.type),
                                     record.component, record.entity);
    if (record.kind == RecordKind::kBegin) {
      ++depth[key];
    } else if (record.kind == RecordKind::kEnd) {
      // An end must close a previously opened begin of the same key.
      EXPECT_GT(depth[key], 0)
          << "end without begin: " << to_string(record.type) << " "
          << record.component << "/" << record.entity;
      --depth[key];
    }
  });
  for (const auto& [key, open] : depth) {
    EXPECT_EQ(open, 0) << "unclosed span: " << std::get<1>(key) << "/"
                       << std::get<2>(key);
  }
}

TEST(TraceInvariants, TaskLifecycleOrdering) {
  core::Session session = make_session(11);
  run_traced("srun", 11, 20, /*prof=*/false, nullptr, &session);
  const Tracer& tracer = *session.tracer();

  // Per task uid: submit-begin <= schedule-begin <= launch-begin <=
  // run-begin <= run-end <= collect-end.
  struct Times {
    sim::Time submit = -1, schedule = -1, launch = -1, run_begin = -1,
              run_end = -1, collect_end = -1;
  };
  std::map<std::string, Times> tasks;
  tracer.for_each([&](const Record& r) {
    if (r.entity.empty()) return;
    auto& t = tasks[r.entity];
    if (r.kind == RecordKind::kBegin) {
      if (r.type == SpanType::kTaskSubmit) t.submit = r.time;
      if (r.type == SpanType::kTaskSchedule) t.schedule = r.time;
      if (r.type == SpanType::kTaskLaunch) t.launch = r.time;
      if (r.type == SpanType::kTaskRun) t.run_begin = r.time;
    } else if (r.kind == RecordKind::kEnd) {
      if (r.type == SpanType::kTaskRun) t.run_end = r.time;
      if (r.type == SpanType::kTaskCollect) t.collect_end = r.time;
    }
  });
  int complete = 0;
  for (const auto& [uid, t] : tasks) {
    if (t.submit < 0) continue;  // non-task entities
    ++complete;
    EXPECT_LE(t.submit, t.schedule) << uid;
    EXPECT_LE(t.schedule, t.launch) << uid;
    EXPECT_LE(t.launch, t.run_begin) << uid;
    EXPECT_LE(t.run_begin, t.run_end) << uid;
    EXPECT_LE(t.run_end, t.collect_end) << uid;
  }
  EXPECT_EQ(complete, 20);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON well-formedness: a tiny JSON parser (objects, arrays,
// strings, numbers, literals) that accepts exactly well-formed input.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, WellFormedJsonRoundTrip) {
  const auto json = run_traced("hybrid", 21, 30, /*prof=*/false);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // Structural markers Perfetto relies on.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeTrace, EmptyTracerStillWellFormed) {
  sim::Engine engine;
  Tracer tracer(engine, 4);
  std::ostringstream os;
  write_chrome_trace(tracer, os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// ---------------------------------------------------------------------------
// Exporter determinism.

TEST(ProfExport, ByteIdenticalForSameSeed) {
  const auto a = run_traced("hybrid", 42, 50, /*prof=*/true);
  const auto b = run_traced("hybrid", 42, 50, /*prof=*/true);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.compare(0, 15, "#flotilla-prof,"), 0);
}

TEST(ProfExport, DivergesAcrossSeeds) {
  const auto a = run_traced("hybrid", 42, 50, /*prof=*/true);
  const auto b = run_traced("hybrid", 43, 50, /*prof=*/true);
  EXPECT_NE(a, b);
}

TEST(ChromeTrace, ByteIdenticalForSameSeed) {
  const auto a = run_traced("flux", 5, 25, /*prof=*/false);
  const auto b = run_traced("flux", 5, 25, /*prof=*/false);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// OverheadReport identity: hand-built trace for a 3-task scenario with
// known span durations; the report must reproduce them exactly.

TEST(OverheadReport, MatchesHandComputedSpans) {
  sim::Engine engine;
  Tracer tracer(engine);
  TraceHandle trace(&tracer);

  // Backend bootstrap: flux.0 takes 20 s, dragon 9 s.
  trace.begin(SpanType::kBootstrap, "flux.0", "");
  trace.begin(SpanType::kBootstrap, "dragon", "");
  engine.in(9.0, [&] { trace.end(SpanType::kBootstrap, "dragon", ""); });
  engine.in(20.0, [&] { trace.end(SpanType::kBootstrap, "flux.0", ""); });

  // Three tasks: queue waits of 1, 2 and 3 s; schedule spans of 0.5 s
  // each; submit spans of 0.25 s each; collect spans of 0.1 s each.
  for (int i = 0; i < 3; ++i) {
    const std::string uid = "task." + std::to_string(i);
    const double base = 30.0 + 10.0 * i;
    engine.at(base, [&, uid] {
      trace.begin(SpanType::kTaskSubmit, "tmgr", uid);
      trace.begin(SpanType::kTaskSchedule, "agent", uid);
    });
    engine.at(base + 0.25,
              [&, uid] { trace.end(SpanType::kTaskSubmit, "tmgr", uid); });
    engine.at(base + 0.5,
              [&, uid] { trace.end(SpanType::kTaskSchedule, "agent", uid); });
    engine.at(base + 0.5, [&, uid] {
      trace.begin(SpanType::kTaskQueueWait, "flux.0", uid);
    });
    engine.at(base + 0.5 + (i + 1), [&, uid] {
      trace.end(SpanType::kTaskQueueWait, "flux.0", uid);
      trace.begin(SpanType::kTaskCollect, "agent", uid);
    });
    engine.at(base + 0.6 + (i + 1), [&, uid] {
      trace.end(SpanType::kTaskCollect, "agent", uid);
    });
  }
  engine.run();

  const auto report = OverheadReport::from_trace(tracer);
  EXPECT_EQ(report.unmatched_ends(), 0u);
  EXPECT_EQ(report.unclosed_begins(), 0u);

  // Fig 7 launch overheads per backend.
  EXPECT_DOUBLE_EQ(report.backend_launch_overhead("flux"), 20.0);
  EXPECT_DOUBLE_EQ(report.backend_launch_overhead("dragon"), 9.0);

  // Scheduler wait: queue waits 1+2+3 plus schedule spans 3 * 0.5.
  EXPECT_NEAR(report.scheduler_wait_total(), 6.0 + 1.5, 1e-9);

  // RP core: submit 3*0.25 + schedule 3*0.5 + collect 3*0.1.
  EXPECT_NEAR(report.rp_core_total(), 0.75 + 1.5 + 0.3, 1e-9);

  const auto waits = report.stats(SpanType::kTaskQueueWait, "flux.0");
  EXPECT_EQ(waits.count, 3u);
  EXPECT_DOUBLE_EQ(waits.min, 1.0);
  EXPECT_DOUBLE_EQ(waits.max, 3.0);
  EXPECT_DOUBLE_EQ(waits.mean(), 2.0);
}

// ---------------------------------------------------------------------------
// Per-shard trace lanes (docs/sharding.md): the merged export must be
// byte-identical for every shards x threads combination of the engine.

namespace {

// Runs a small cross-shard workload with one trace lane per shard and
// returns the merged Chrome trace + .prof bytes.
std::pair<std::string, std::string> traced_lanes_run(int shards,
                                                     int threads) {
  sim::Engine engine(sim::Engine::Config{shards, threads, 0.0});
  TraceLanes lanes(engine, 256);
  constexpr int kChains = 6;
  for (int c = 0; c < kChains; ++c) {
    const sim::ShardId shard = static_cast<sim::ShardId>(c % shards);
    const std::string name = "chain." + std::to_string(c);
    engine.at(shard, 0.1 * (c + 1), [&lanes, &engine, shard, name, c] {
      lanes.current().begin(SpanType::kTaskRun, name, "t" + std::to_string(c));
      // 0.013 keeps every begin/end time distinct from all others (the
      // merge order must not hinge on cross-shard ties).
      engine.at(shard, engine.now() + 0.013 * (c + 1),
                [&lanes, name, c] {
                  lanes.current().end(SpanType::kTaskRun, name,
                                      "t" + std::to_string(c));
                });
    });
  }
  engine.run();
  std::ostringstream chrome;
  std::ostringstream prof;
  write_chrome_trace(lanes, chrome);
  write_prof(lanes, prof);
  return {chrome.str(), prof.str()};
}

}  // namespace

TEST(TraceLanesMerge, RecordsLandInTheExecutingShardsLane) {
  sim::Engine engine(sim::Engine::Config{3, 1, 0.0});
  TraceLanes lanes(engine, 16);
  ASSERT_EQ(lanes.lanes(), 3u);
  for (int s = 0; s < 3; ++s) {
    engine.at(s, 1.0 + s, [&lanes, s] {
      lanes.current().instant(SpanType::kRouting, "shard" + std::to_string(s),
                              "e");
    });
  }
  engine.run();
  for (int s = 0; s < 3; ++s) {
    ASSERT_EQ(lanes.lane(s).size(), 1u);
    EXPECT_EQ(lanes.lane(s).at(0).component, "shard" + std::to_string(s));
  }
  EXPECT_EQ(lanes.total_records(), 3u);
  EXPECT_EQ(lanes.total_dropped(), 0u);
}

TEST(TraceLanesMerge, MergeIsChronologicalWithShardTiebreak) {
  sim::Engine engine(sim::Engine::Config{2, 1, 0.0});
  TraceLanes lanes(engine, 16);
  engine.at(1, 1.0, [&lanes] {
    lanes.current().instant(SpanType::kRouting, "s1", "a");
  });
  engine.at(0, 1.0, [&lanes] {
    lanes.current().instant(SpanType::kRouting, "s0", "b");
  });
  engine.at(0, 2.0, [&lanes] {
    lanes.current().instant(SpanType::kRouting, "s0", "c");
  });
  engine.run();
  Tracer merged(engine, 16);
  lanes.merge_into(merged);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.at(0).component, "s0");  // tie at t=1.0: lower shard first
  EXPECT_EQ(merged.at(1).component, "s1");
  EXPECT_EQ(merged.at(2).component, "s0");
}

TEST(TraceLanesMerge, MergedExportInvariantAcrossShardsAndThreads) {
  const auto reference = traced_lanes_run(1, 1);
  EXPECT_NE(reference.first.find("\"traceEvents\""), std::string::npos);
  for (const int shards : {1, 2, 3}) {
    for (const int threads : {1, 2, 4}) {
      const auto got = traced_lanes_run(shards, threads);
      EXPECT_EQ(got.first, reference.first)
          << "chrome trace diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(got.second, reference.second)
          << ".prof diverged at shards=" << shards
          << " threads=" << threads;
    }
  }
}

TEST(OverheadReport, CountsUnmatchedRecords) {
  sim::Engine engine;
  Tracer tracer(engine);
  TraceHandle trace(&tracer);
  trace.begin(SpanType::kBootstrap, "dragon", "");  // never closed
  trace.end(SpanType::kTaskRun, "flux.0", "ghost");  // never opened
  engine.run();
  const auto report = OverheadReport::from_trace(tracer);
  EXPECT_EQ(report.unclosed_begins(), 1u);
  EXPECT_EQ(report.unmatched_ends(), 1u);
}

}  // namespace
}  // namespace flotilla::obs
