// Tests for the MPI/PMI wireup model (§3.1) and the Flux scheduling
// policy knob (FCFS vs backfill, §3.2.1).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "slurm/srun_backend.hpp"
#include "util/strfmt.hpp"

namespace flotilla {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::frontier_calibration;
using platform::frontier_spec;

// Measures start latency (submit -> exec start) for a task of `cores`
// spread over whole nodes.
template <typename Backend, typename... Args>
double start_latency(std::int64_t cores, std::int64_t cores_per_node,
                     Args&&... args) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 8);
  Backend backend(engine, cluster, NodeRange{0, 8},
                  std::forward<Args>(args)...);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(300.0);
  EXPECT_TRUE(ready);
  const sim::Time submit = engine.now();
  sim::Time started = -1.0;
  backend.on_task_start(
      [&](const std::string&) { started = engine.now(); });
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  platform::LaunchRequest req;
  req.id = "mpi.0";
  req.demand.cores = cores;
  req.demand.cores_per_node = cores_per_node;
  req.duration = 1.0;
  backend.submit(std::move(req));
  engine.run();
  EXPECT_GE(started, 0.0);
  return started - submit;
}

TEST(MpiWireup, MultiNodeStepsPayWireupOnEveryBackend) {
  const auto cal = frontier_calibration();
  // srun
  const double srun_1 =
      start_latency<slurm::SrunBackend>(56, 0, cal.slurm, 42, nullptr);
  const double srun_4 =
      start_latency<slurm::SrunBackend>(224, 56, cal.slurm, 42, nullptr);
  EXPECT_GT(srun_4, srun_1 + 0.2);  // wireup base 0.30 s
  // flux
  const double flux_1 =
      start_latency<flux::FluxBackend>(56, 0, 1, cal.flux, 42);
  const double flux_4 =
      start_latency<flux::FluxBackend>(224, 56, 1, cal.flux, 42);
  EXPECT_GT(flux_4, flux_1 + 0.05);
  // dragon
  const double dragon_1 =
      start_latency<dragon::DragonBackend>(56, 0, cal.dragon, 42);
  const double dragon_4 =
      start_latency<dragon::DragonBackend>(224, 56, cal.dragon, 42);
  EXPECT_GT(dragon_4, dragon_1 + 0.3);
}

TEST(MpiWireup, FluxIsTheFastTightlyCoupledPath) {
  // §3.1/§3.2: Flux is the backend of choice for tightly coupled tasks;
  // its wireup must beat both srun's controller-mediated PMI and Dragon's
  // unoptimized group start.
  const auto cal = frontier_calibration();
  const double flux =
      start_latency<flux::FluxBackend>(448, 56, 1, cal.flux, 42);
  const double srun =
      start_latency<slurm::SrunBackend>(448, 56, cal.slurm, 42, nullptr);
  const double dragon =
      start_latency<dragon::DragonBackend>(448, 56, cal.dragon, 42);
  EXPECT_LT(flux, srun);
  EXPECT_LT(srun, dragon + 0.5);  // dragon and srun are both slow paths
  EXPECT_LT(flux, dragon);
}

TEST(MpiWireup, SingleNodeTasksUnaffected) {
  // The wireup model must not perturb the calibrated single-core numbers.
  const auto cal = frontier_calibration();
  const double lat =
      start_latency<flux::FluxBackend>(1, 0, 1, cal.flux, 42);
  EXPECT_LT(lat, 0.2);  // sched + spawn only, ~40 ms
}

// ---------------------------------------------------------- sched policy

TEST(FluxPolicy, FcfsBlocksBehindBigHeadBackfillDoesNot) {
  auto small_task_wait = [](int backfill_depth) {
    sim::Engine engine;
    Cluster cluster(frontier_spec(), 2);
    flux::FluxBackend backend(engine, cluster, NodeRange{0, 2}, 1,
                              frontier_calibration().flux, 42, nullptr,
                              backfill_depth);
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(120.0);
    EXPECT_TRUE(ready);
    sim::Time small_started = -1.0;
    backend.on_task_start([&](const std::string& id) {
      if (id == "small") small_started = engine.now();
    });
    backend.on_task_complete([](const platform::LaunchOutcome&) {});

    auto req = [](std::string id, std::int64_t cores, double duration) {
      platform::LaunchRequest r;
      r.id = std::move(id);
      r.demand.cores = cores;
      r.duration = duration;
      return r;
    };
    const sim::Time t0 = engine.now();
    backend.submit(req("big.0", 111, 100.0));  // leaves 1 core free
    backend.submit(req("big.1", 112, 10.0));   // blocked head
    backend.submit(req("small", 1, 1.0));      // fits the free core
    engine.run();
    return small_started - t0;
  };
  const double fcfs = small_task_wait(1);
  const double backfill = small_task_wait(64);
  EXPECT_GT(fcfs, 90.0);     // waits for big.0 to finish
  EXPECT_LT(backfill, 10.0);  // backfilled immediately
}

}  // namespace
}  // namespace flotilla
