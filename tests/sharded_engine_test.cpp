// Determinism and semantics of the partitioned engine (docs/sharding.md):
// the shards x threads fingerprint matrix, mailbox merge ordering,
// cross-shard cancellation, lookahead windows, and the invoke_on hop.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/spec.hpp"
#include "sim/engine.hpp"
#include "sim/storm.hpp"

namespace flotilla::sim {
namespace {

// --- the tentpole gate: shards x threads fingerprint matrix ---------------

// Same seed => byte-identical storm fingerprints for every combination of
// shards in {1,2,4} x threads in {1,2,4}, at zero lookahead (the mode the
// full stack runs under) and at a positive conservative window. Run twice
// per cell to also catch run-to-run nondeterminism within a cell.
TEST(ShardMatrix, FingerprintInvariantAcrossShardsAndThreads) {
  for (const Time lookahead : {0.0, 1.0e-3}) {
    StormConfig base;
    base.actors = 48;
    base.steps = 60;
    base.seed = 1234;
    base.lookahead = lookahead;
    base.shards = 1;
    base.threads = 1;
    const StormResult reference = run_storm(base);
    ASSERT_GT(reference.events, 0u);
    for (const int shards : {1, 2, 4}) {
      for (const int threads : {1, 2, 4}) {
        StormConfig config = base;
        config.shards = shards;
        config.threads = threads;
        const StormResult once = run_storm(config);
        const StormResult twice = run_storm(config);
        EXPECT_EQ(once.fingerprint, reference.fingerprint)
            << "shards=" << shards << " threads=" << threads
            << " lookahead=" << lookahead;
        EXPECT_EQ(once.events, reference.events)
            << "shards=" << shards << " threads=" << threads
            << " lookahead=" << lookahead;
        EXPECT_EQ(once.makespan, reference.makespan)
            << "shards=" << shards << " threads=" << threads
            << " lookahead=" << lookahead;
        EXPECT_EQ(once.fingerprint, twice.fingerprint)
            << "run-to-run divergence at shards=" << shards
            << " threads=" << threads << " lookahead=" << lookahead;
      }
    }
  }
}

TEST(ShardMatrix, DifferentSeedsDiverge) {
  StormConfig a;
  a.seed = 7;
  StormConfig b = a;
  b.seed = 8;
  EXPECT_NE(run_storm(a).fingerprint, run_storm(b).fingerprint);
}

// --- basic sharded semantics ----------------------------------------------

TEST(ShardedEngine, EventsOnDifferentShardsAllRun) {
  Engine engine(Engine::Config{4, 1, 0.0});
  std::vector<int> order;
  for (int s = 0; s < 4; ++s) {
    engine.at(s, 0.1 * (s + 1), [&order, s] { order.push_back(s); });
  }
  EXPECT_EQ(engine.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(engine.processed(), 4u);
  EXPECT_TRUE(engine.empty());
}

TEST(ShardedEngine, SameTimestampDrainsAllShardsInShardOrder) {
  Engine engine(Engine::Config{3, 1, 0.0});
  std::vector<int> order;
  for (int s = 2; s >= 0; --s) {  // insertion order deliberately reversed
    engine.at(s, 1.0, [&order, s] { order.push_back(s); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngine, CurrentShardTracksExecutingEvent) {
  Engine engine(Engine::Config{3, 1, 0.0});
  EXPECT_EQ(engine.current_shard(), kControlShard);
  std::vector<ShardId> seen;
  for (int s = 0; s < 3; ++s) {
    engine.at(s, 1.0 + s, [&] { seen.push_back(engine.current_shard()); });
  }
  engine.run();
  EXPECT_EQ(seen, (std::vector<ShardId>{0, 1, 2}));
  EXPECT_EQ(engine.current_shard(), kControlShard);
}

TEST(ShardedEngine, NowIsShardLocalInsideCallbacks) {
  Engine engine(Engine::Config{2, 1, 5.0});  // wide window
  std::vector<Time> nows;
  engine.at(0, 1.0, [&] { nows.push_back(engine.now()); });
  engine.at(1, 2.0, [&] { nows.push_back(engine.now()); });
  engine.at(0, 3.0, [&] { nows.push_back(engine.now()); });
  engine.run();
  EXPECT_EQ(nows, (std::vector<Time>{1.0, 3.0, 2.0}));  // shard 0 drains first
  EXPECT_EQ(engine.now(), 3.0);  // committed clock is the max
}

TEST(ShardedEngine, CrossShardSendDeliversAtRequestedTime) {
  Engine engine(Engine::Config{2, 1, 0.0});
  Time delivered = -1.0;
  engine.at(0, 1.0, [&] {
    engine.at(1, 2.5, [&] { delivered = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(delivered, 2.5);
}

TEST(ShardedEngine, CrossShardSendInsidePastClampsToSenderNow) {
  Engine engine(Engine::Config{2, 1, 0.0});
  Time delivered = -1.0;
  engine.at(0, 1.0, [&] {
    engine.at(1, 0.25, [&] { delivered = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_EQ(delivered, 1.0);
}

// Two shards send to the same destination at the same delivery time: the
// merge is source-major (then FIFO), independent of drain interleaving.
TEST(ShardedEngine, MailboxMergeOrdersBySourceThenFifo) {
  Engine engine(Engine::Config{3, 1, 0.0});
  std::vector<std::string> order;
  engine.at(1, 1.0, [&] {
    engine.at(0, 2.0, [&] { order.push_back("from1.a"); });
    engine.at(0, 2.0, [&] { order.push_back("from1.b"); });
  });
  engine.at(2, 1.0, [&] {
    engine.at(0, 2.0, [&] { order.push_back("from2.a"); });
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"from1.a", "from1.b", "from2.a"}));
}

TEST(ShardedEngine, CancelInFlightCrossShardSend) {
  Engine engine(Engine::Config{2, 1, 0.0});
  bool fired = false;
  engine.at(0, 1.0, [&] {
    const Engine::EventId id = engine.at(1, 2.0, [&] { fired = true; });
    EXPECT_TRUE(engine.cancel(id));
    EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
}

TEST(ShardedEngine, CancelDeliveredCrossShardSend) {
  Engine engine(Engine::Config{2, 1, 0.0});
  bool fired = false;
  Engine::EventId id{};
  engine.at(0, 1.0, [&] {
    id = engine.at(1, 3.0, [&] { fired = true; });
  });
  // At t=2 the send has been merged into shard 1's calendar; the id must
  // still cancel it there.
  engine.at(0, 2.0, [&] { EXPECT_TRUE(engine.cancel(id)); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
}

TEST(ShardedEngine, InvokeOnHopsToTargetShard) {
  Engine engine(Engine::Config{2, 1, 0.0});
  ShardId seen = -1;
  Time when = -1.0;
  engine.at(1, 1.5, [&] {
    engine.invoke_on(kControlShard, [&] {
      seen = engine.current_shard();
      when = engine.now();
    });
  });
  engine.run();
  EXPECT_EQ(seen, kControlShard);
  EXPECT_EQ(when, 1.5);  // posted at the sender's time
}

TEST(ShardedEngine, InvokeOnSameShardRunsInline) {
  Engine engine(Engine::Config{2, 1, 0.0});
  std::vector<int> order;
  engine.at(1, 1.0, [&] {
    order.push_back(1);
    engine.invoke_on(1, [&] { order.push_back(2); });
    order.push_back(3);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedEngine, AffinitySpreadsOverWorkerShardsOnly) {
  Engine engine(Engine::Config{4, 1, 0.0});
  std::map<ShardId, int> hits;
  for (int i = 0; i < 64; ++i) {
    const ShardId s = engine.affinity("backend." + std::to_string(i));
    ASSERT_GE(s, 1);
    ASSERT_LT(s, 4);
    ++hits[s];
  }
  EXPECT_EQ(hits.size(), 3u);  // all worker shards get some load
  Engine single;
  EXPECT_EQ(single.affinity("backend.0"), kControlShard);
}

TEST(ShardedEngine, RunUntilStopsAtBoundaryAcrossShards) {
  Engine engine(Engine::Config{2, 1, 0.0});
  int ran = 0;
  engine.at(0, 1.0, [&] { ++ran; });
  engine.at(1, 2.0, [&] { ++ran; });
  engine.at(1, 5.0, [&] { ++ran; });
  EXPECT_EQ(engine.run(3.0), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(ran, 3);
}

TEST(ShardedEngine, StepInterleavesShardsDeterministically) {
  Engine engine(Engine::Config{2, 1, 0.0});
  std::vector<int> order;
  engine.at(0, 1.0, [&] { order.push_back(0); });
  engine.at(1, 1.0, [&] { order.push_back(1); });
  engine.at(1, 2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(engine.processed(), 3u);
}

TEST(ShardedEngine, StopEndsRunAtRoundBoundary) {
  Engine engine(Engine::Config{2, 1, 0.0});
  int ran = 0;
  engine.at(0, 1.0, [&] {
    ++ran;
    engine.stop();
  });
  engine.at(1, 2.0, [&] { ++ran; });
  engine.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.run(), 1u);  // a later run() resumes
  EXPECT_EQ(ran, 2);
}

TEST(ShardedEngine, LookaheadWindowDrainsWholeWindowPerRound) {
  // With lookahead 1.0 the events at t=1.0 and t=1.8 fall into one round;
  // shard 0 drains its whole window before shard 1 runs t=1.5.
  Engine engine(Engine::Config{2, 1, 1.0});
  std::vector<std::string> order;
  engine.at(0, 1.0, [&] { order.push_back("s0@1.0"); });
  engine.at(0, 1.8, [&] { order.push_back("s0@1.8"); });
  engine.at(1, 1.5, [&] { order.push_back("s1@1.5"); });
  engine.run();
  EXPECT_EQ(order, (std::vector<std::string>{"s0@1.0", "s0@1.8", "s1@1.5"}));
}

TEST(ShardedEngine, PendingCountsCalendarsAndInFlightSends) {
  Engine engine(Engine::Config{2, 1, 0.0});
  engine.at(0, 1.0, [&] {
    engine.at(1, 2.0, [] {});
    // The send is still in the mailbox here: visible in pending().
    EXPECT_EQ(engine.pending(), 1u);
    EXPECT_FALSE(engine.empty());
  });
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_TRUE(engine.empty());
}

// --- threaded drains (also exercised under TSan in CI) --------------------

TEST(ShardedEngineThreads, ParallelDrainMatchesSequential) {
  StormConfig config;
  config.actors = 32;
  config.steps = 40;
  config.seed = 99;
  config.shards = 4;
  config.threads = 1;
  const StormResult sequential = run_storm(config);
  config.threads = 4;
  const StormResult parallel = run_storm(config);
  EXPECT_EQ(parallel.fingerprint, sequential.fingerprint);
  EXPECT_EQ(parallel.events, sequential.events);
}

TEST(ShardedEngineThreads, WorkerPoolProcessesShardConfinedEvents) {
  Engine engine(Engine::Config{4, 4, 0.0});
  std::atomic<int> ran{0};
  for (int s = 0; s < 4; ++s) {
    engine.at(s, 1.0, [&engine, &ran, s] {
      ran.fetch_add(1, std::memory_order_relaxed);
      engine.at(s, 2.0, [&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  EXPECT_EQ(engine.run(), 8u);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(engine.processed(), 8u);
  EXPECT_EQ(engine.now(), 2.0);
}

// --- full-stack threads matrix (bare mode) --------------------------------

// The confinement proofs (analyze/confined.txt, machine-checked by
// flotilla-analyze's conf-* passes) lift the stack's threads = 1 pin: a
// hybrid multi-backend scenario over a 4-shard engine must produce
// byte-identical trace/task fingerprints and terminal state for
// engine_threads in {1, 2, 4}. The reference run is monitored (serial);
// the matrix runs are bare. This is also the test the TSan CI leg drives
// to prove the parallel full-stack drain race-free.
TEST(ShardedEngineThreads, FullStackFingerprintInvariantAcrossThreads) {
  check::ScenarioSpec spec;
  spec.seed = 20260809;
  spec.nodes = 8;
  spec.shards = 4;
  spec.workload = "sleep";
  spec.tasks = 96;
  spec.duration = 0.25;
  spec.backends = {{.type = "flux", .partitions = 2},
                   {.type = "dragon", .partitions = 1},
                   {.type = "srun"}};

  const check::RunResult reference = check::run_scenario(spec, {});
  ASSERT_TRUE(reference.ok())
      << (reference.violations.empty() ? "" : reference.violations[0].detail);
  ASSERT_GT(reference.done, 0u);

  for (const int threads : {1, 2, 4}) {
    check::RunOptions opts;
    opts.engine_threads = threads;
    const check::RunResult result = check::run_scenario(spec, opts);
    EXPECT_TRUE(result.ok())
        << "engine_threads=" << threads << ": "
        << (result.violations.empty() ? "" : result.violations[0].detail);
    EXPECT_EQ(result.fingerprint, reference.fingerprint)
        << "engine_threads=" << threads;
    EXPECT_EQ(result.done, reference.done);
    EXPECT_EQ(result.failed, reference.failed);
    EXPECT_EQ(result.canceled, reference.canceled);
    EXPECT_EQ(result.makespan, reference.makespan);
  }
}

// Bare mode refuses the between-events observers: journaling requires
// the one global event order that a threaded drain does not have.
TEST(ShardedEngineThreads, ThreadedRunRejectsJournaling) {
  check::ScenarioSpec spec;
  spec.shards = 2;
  check::RunOptions opts;
  opts.engine_threads = 2;
  opts.journal = true;
  const check::RunResult result = check::run_scenario(spec, opts);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].invariant, "exception");
}

TEST(ShardedEngineThreads, ThreadsClampedToShardCount) {
  Engine engine(Engine::Config{2, 16, 0.0});
  int ran = 0;
  engine.at(0, 1.0, [&] { ++ran; });  // both shards owned by 2 workers max
  engine.at(1, 1.0, [&] { ++ran; });
  engine.run();
  EXPECT_EQ(ran, 2);
}

}  // namespace
}  // namespace flotilla::sim
