#include <gtest/gtest.h>

#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "platform/node.hpp"
#include "platform/placement.hpp"
#include "util/error.hpp"

namespace flotilla::platform {
namespace {

TEST(Node, AllocateAndReleaseRoundTrip) {
  Node node(3, 56, 8);
  EXPECT_TRUE(node.idle());
  auto slice = node.allocate(10, 2);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->node, 3);
  EXPECT_EQ(slice->cores(), 10);
  EXPECT_EQ(slice->gpus(), 2);
  EXPECT_EQ(node.free_cores(), 46);
  EXPECT_EQ(node.free_gpus(), 6);
  node.release(*slice);
  EXPECT_TRUE(node.idle());
}

TEST(Node, DistinctAllocationsAreDisjoint) {
  Node node(0, 56, 8);
  const auto a = node.allocate(20, 4);
  const auto b = node.allocate(20, 4);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->core_mask & b->core_mask, 0u);
  EXPECT_EQ(a->gpu_mask & b->gpu_mask, 0);
}

TEST(Node, RefusesOverCommit) {
  Node node(0, 4, 1);
  EXPECT_TRUE(node.allocate(4, 0).has_value());
  EXPECT_FALSE(node.allocate(1, 0).has_value());
  EXPECT_FALSE(node.allocate(0, 2).has_value());
}

TEST(Node, ZeroDemandSucceedsWithEmptySlice) {
  Node node(0, 4, 2);
  const auto slice = node.allocate(0, 0);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->cores(), 0);
  EXPECT_EQ(slice->gpus(), 0);
}

TEST(Node, DoubleFreeThrows) {
  Node node(0, 8, 2);
  const auto slice = node.allocate(2, 1);
  node.release(*slice);
  EXPECT_THROW(node.release(*slice), util::Error);
}

TEST(Node, ReleaseOnWrongNodeThrows) {
  Node a(0, 8, 2), b(1, 8, 2);
  const auto slice = a.allocate(2, 0);
  EXPECT_THROW(b.release(*slice), util::Error);
}

TEST(Node, SupportsFull64Cores) {
  Node node(0, 64, 0);
  const auto slice = node.allocate(64, 0);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(slice->cores(), 64);
  EXPECT_EQ(node.free_cores(), 0);
  node.release(*slice);
  EXPECT_EQ(node.free_cores(), 64);
}

TEST(Placement, AggregatesAcrossSlices) {
  Node n0(0, 56, 8), n1(1, 56, 8);
  Placement placement;
  placement.slices.push_back(*n0.allocate(56, 8));
  placement.slices.push_back(*n1.allocate(12, 0));
  EXPECT_EQ(placement.node_count(), 2);
  EXPECT_EQ(placement.total_cores(), 68);
  EXPECT_EQ(placement.total_gpus(), 8);
}

TEST(Cluster, FrontierProfileMatchesPaper) {
  // The paper: 4 nodes at SMT=1 yield 224 cores, 112-srun ceiling.
  const auto spec = frontier_spec();
  EXPECT_EQ(spec.cores_per_node, 56);
  EXPECT_EQ(spec.gpus_per_node, 8);
  EXPECT_EQ(spec.srun_concurrency_ceiling, 112);
  Cluster cluster(spec, 4);
  EXPECT_EQ(cluster.total_cores(cluster.all_nodes()), 224);
  EXPECT_EQ(cluster.total_gpus(cluster.all_nodes()), 32);
}

TEST(Cluster, FreeAggregatesFollowAllocations) {
  Cluster cluster(frontier_spec(), 2);
  const auto range = cluster.all_nodes();
  EXPECT_EQ(cluster.free_cores(range), 112);
  const auto slice = cluster.node(0).allocate(30, 4);
  ASSERT_TRUE(slice.has_value());
  EXPECT_EQ(cluster.free_cores(range), 82);
  EXPECT_EQ(cluster.free_gpus(range), 12);
}

TEST(Cluster, NodeIdOutOfRangeThrows) {
  Cluster cluster(frontier_spec(), 2);
  EXPECT_THROW(cluster.node(2), util::Error);
  EXPECT_THROW(cluster.node(-1), util::Error);
}

TEST(Cluster, PartitionSplitsEvenly) {
  const auto parts = Cluster::partition(NodeRange{0, 64}, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(parts[static_cast<size_t>(i)].count, 16);
    EXPECT_EQ(parts[static_cast<size_t>(i)].first, i * 16);
  }
}

TEST(Cluster, PartitionDistributesRemainderToFirst) {
  const auto parts = Cluster::partition(NodeRange{10, 10}, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (NodeRange{10, 4}));
  EXPECT_EQ(parts[1], (NodeRange{14, 3}));
  EXPECT_EQ(parts[2], (NodeRange{17, 3}));
}

TEST(Cluster, PartitionMorePartsThanNodesThrows) {
  EXPECT_THROW(Cluster::partition(NodeRange{0, 2}, 3), util::Error);
}

TEST(NodeRange, ContainsAndEnd) {
  const NodeRange range{4, 3};
  EXPECT_EQ(range.end(), 7);
  EXPECT_TRUE(range.contains(4));
  EXPECT_TRUE(range.contains(6));
  EXPECT_FALSE(range.contains(7));
  EXPECT_FALSE(range.contains(3));
}

TEST(Calibration, FrontierAnchorsMatchFittedRates) {
  // Spot-check that the documented fits still hold: the controller service
  // model must reproduce 152 tasks/s at 1 node and 61 tasks/s at 4 nodes.
  const auto cal = frontier_calibration();
  const double rate1 =
      1.0 / (cal.slurm.ctl_step_base + 1 * cal.slurm.ctl_step_per_node);
  const double rate4 =
      1.0 / (cal.slurm.ctl_step_base + 4 * cal.slurm.ctl_step_per_node);
  EXPECT_NEAR(rate1, 152.0, 5.0);
  EXPECT_NEAR(rate4, 61.0, 3.0);
  // Single-node Flux spawn rate ~28 tasks/s; rank-0 cap near the observed
  // 744 tasks/s peak.
  EXPECT_NEAR(1.0 / cal.flux.exec_spawn, 28.6, 1.0);
  EXPECT_NEAR(1.0 / (cal.flux.ingest_cost + cal.flux.sched_cost), 800.0,
              100.0);
  // Bootstrap anchors (Fig 7).
  EXPECT_NEAR(cal.flux.bootstrap_base, 20.0, 3.0);
  EXPECT_NEAR(cal.dragon.bootstrap_base, 9.0, 1.0);
}

}  // namespace
}  // namespace flotilla::platform
