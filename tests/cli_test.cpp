#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace flotilla::util {
namespace {

CliParser make_parser() {
  CliParser cli("test tool");
  cli.option("nodes", "16", "pilot size")
      .option("backend", "flux", "backend name")
      .option("rate", "1.5", "a rate")
      .flag("verbose", "chatty output");
  return cli;
}

bool parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParser, DefaultsApplyWhenAbsent) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("nodes"), 16);
  EXPECT_EQ(cli.get("backend"), "flux");
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(CliParser, SpaceAndEqualsSyntaxBothWork) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--nodes", "64", "--backend=dragon"}));
  EXPECT_EQ(cli.get_int("nodes"), 64);
  EXPECT_EQ(cli.get("backend"), "dragon");
}

TEST(CliParser, FlagsAndPositionals) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "input.csv", "more"}));
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(CliParser, HelpReturnsFalse) {
  auto cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--help"}));
  EXPECT_NE(cli.usage().find("--nodes"), std::string::npos);
}

TEST(CliParser, UnknownOptionThrows) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--nodez", "4"}), Error);
}

TEST(CliParser, MissingValueThrows) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--nodes"}), Error);
}

TEST(CliParser, FlagWithValueThrows) {
  auto cli = make_parser();
  EXPECT_THROW(parse(cli, {"--verbose=yes"}), Error);
}

TEST(CliParser, TypeErrorsThrow) {
  auto cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--nodes", "abc"}));
  EXPECT_THROW(cli.get_int("nodes"), Error);
  EXPECT_THROW(cli.get("undeclared"), Error);
  EXPECT_THROW(cli.get_flag("nodes"), Error);  // not a flag
}

TEST(CliParser, DuplicateDeclarationThrows) {
  CliParser cli;
  cli.option("x", "1", "");
  EXPECT_THROW(cli.option("x", "2", ""), Error);
  EXPECT_THROW(cli.flag("x", ""), Error);
}

}  // namespace
}  // namespace flotilla::util
