// Tests for the real process-execution pool (fork/exec on the host).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "local/process_pool.hpp"
#include "util/error.hpp"

namespace flotilla::local {
namespace {

TEST(ProcessPool, RunsRealExecutableAndReportsExitZero) {
  ProcessPool pool(2);
  std::atomic<int> code{-1};
  pool.spawn({"/bin/true"},
             [&](const ProcessResult& r) { code = r.exit_code; });
  pool.wait_all();
  EXPECT_EQ(code.load(), 0);
  EXPECT_EQ(pool.launched(), 1u);
  EXPECT_EQ(pool.completed(), 1u);
  EXPECT_EQ(pool.running(), 0u);
}

TEST(ProcessPool, ReportsNonZeroExitCodes) {
  ProcessPool pool(2);
  std::atomic<int> code{-1};
  std::atomic<bool> ok{true};
  pool.spawn({"/bin/sh", "-c", "exit 3"}, [&](const ProcessResult& r) {
    code = r.exit_code;
    ok = r.success();
  });
  pool.wait_all();
  EXPECT_EQ(code.load(), 3);
  EXPECT_FALSE(ok.load());
}

TEST(ProcessPool, MissingCommandReports127) {
  ProcessPool pool(1);
  std::atomic<int> code{-1};
  pool.spawn({"definitely-not-a-real-command-xyz"},
             [&](const ProcessResult& r) { code = r.exit_code; });
  pool.wait_all();
  EXPECT_EQ(code.load(), 127);
}

TEST(ProcessPool, ConcurrencyCapThrottlesExecution) {
  // 4 sleeps of ~0.2 s with 2 slots must take >= ~0.4 s wall.
  ProcessPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.spawn({"/bin/sleep", "0.2"},
               [&](const ProcessResult& r) {
                 EXPECT_TRUE(r.success());
                 done.fetch_add(1);
               });
  }
  EXPECT_LE(pool.running(), 2u);
  pool.wait_all();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(done.load(), 4);
  EXPECT_GE(wall, 0.38);
}

TEST(ProcessPool, ManyShortProcessesAllComplete) {
  ProcessPool pool(4);
  std::atomic<int> ok{0};
  constexpr int n = 40;
  for (int i = 0; i < n; ++i) {
    pool.spawn({"/bin/true"},
               [&](const ProcessResult& r) { ok += r.success(); });
  }
  pool.wait_all();
  EXPECT_EQ(ok.load(), n);
  EXPECT_EQ(pool.completed(), static_cast<std::uint64_t>(n));
}

TEST(ProcessPool, WallTimeIsMeasured) {
  ProcessPool pool(1);
  std::atomic<double> wall{0.0};
  pool.spawn({"/bin/sleep", "0.15"},
             [&](const ProcessResult& r) { wall = r.wall_seconds; });
  pool.wait_all();
  EXPECT_GE(wall.load(), 0.12);
  EXPECT_LT(wall.load(), 5.0);
}

TEST(ProcessPool, EmptyArgvThrows) {
  ProcessPool pool(1);
  EXPECT_THROW(pool.spawn({}, {}), util::Error);
}

TEST(ProcessPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ProcessPool pool(2);
    for (int i = 0; i < 6; ++i) {
      pool.spawn({"/bin/sleep", "0.05"},
                 [&](const ProcessResult&) { done.fetch_add(1); });
    }
    // dtor must wait for all six.
  }
  EXPECT_EQ(done.load(), 6);
}

}  // namespace
}  // namespace flotilla::local
