// Tests for the real process-execution pool (fork/exec on the host).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "local/process_pool.hpp"
#include "util/error.hpp"

namespace flotilla::local {
namespace {

TEST(ProcessPool, RunsRealExecutableAndReportsExitZero) {
  ProcessPool pool(2);
  std::atomic<int> code{-1};
  pool.spawn({"/bin/true"},
             [&](const ProcessResult& r) { code = r.exit_code; });
  pool.wait_all();
  EXPECT_EQ(code.load(), 0);
  EXPECT_EQ(pool.launched(), 1u);
  EXPECT_EQ(pool.completed(), 1u);
  EXPECT_EQ(pool.running(), 0u);
}

TEST(ProcessPool, ReportsNonZeroExitCodes) {
  ProcessPool pool(2);
  std::atomic<int> code{-1};
  std::atomic<bool> ok{true};
  pool.spawn({"/bin/sh", "-c", "exit 3"}, [&](const ProcessResult& r) {
    code = r.exit_code;
    ok = r.success();
  });
  pool.wait_all();
  EXPECT_EQ(code.load(), 3);
  EXPECT_FALSE(ok.load());
}

TEST(ProcessPool, MissingCommandReports127) {
  ProcessPool pool(1);
  std::atomic<int> code{-1};
  pool.spawn({"definitely-not-a-real-command-xyz"},
             [&](const ProcessResult& r) { code = r.exit_code; });
  pool.wait_all();
  EXPECT_EQ(code.load(), 127);
}

TEST(ProcessPool, ConcurrencyCapThrottlesExecution) {
  // 4 sleeps of ~0.2 s with 2 slots must take >= ~0.4 s wall.
  ProcessPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.spawn({"/bin/sleep", "0.2"},
               [&](const ProcessResult& r) {
                 EXPECT_TRUE(r.success());
                 done.fetch_add(1);
               });
  }
  EXPECT_LE(pool.running(), 2u);
  pool.wait_all();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(done.load(), 4);
  EXPECT_GE(wall, 0.38);
}

TEST(ProcessPool, ManyShortProcessesAllComplete) {
  ProcessPool pool(4);
  std::atomic<int> ok{0};
  constexpr int n = 40;
  for (int i = 0; i < n; ++i) {
    pool.spawn({"/bin/true"},
               [&](const ProcessResult& r) { ok += r.success(); });
  }
  pool.wait_all();
  EXPECT_EQ(ok.load(), n);
  EXPECT_EQ(pool.completed(), static_cast<std::uint64_t>(n));
}

TEST(ProcessPool, WallTimeIsMeasured) {
  ProcessPool pool(1);
  std::atomic<double> wall{0.0};
  pool.spawn({"/bin/sleep", "0.15"},
             [&](const ProcessResult& r) { wall = r.wall_seconds; });
  pool.wait_all();
  EXPECT_GE(wall.load(), 0.12);
  EXPECT_LT(wall.load(), 5.0);
}

TEST(ProcessPool, EmptyArgvThrows) {
  ProcessPool pool(1);
  EXPECT_THROW(pool.spawn({}, {}), util::Error);
}

TEST(ProcessPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ProcessPool pool(2);
    for (int i = 0; i < 6; ++i) {
      pool.spawn({"/bin/sleep", "0.05"},
                 [&](const ProcessResult&) { done.fetch_add(1); });
    }
    // dtor must wait for all six.
  }
  EXPECT_EQ(done.load(), 6);
}

// ------------------------------------------- sanitizer regression stress

// Regression: wait_all() used to be able to return while the final
// completion callback was still running on the reaper thread (live_ was
// erased before the callback fired), so the count below could lag. Now
// wait_all() also waits out callbacks in flight.
TEST(ProcessPool, StressWaitAllSeesEveryCallback) {
  for (int round = 0; round < 5; ++round) {
    ProcessPool pool(4);
    std::atomic<int> done{0};
    constexpr int n = 24;
    for (int i = 0; i < n; ++i) {
      pool.spawn({"/bin/true"},
                 [&](const ProcessResult&) { done.fetch_add(1); });
    }
    pool.wait_all();
    ASSERT_EQ(done.load(), n);
  }
}

// Regression: reaper shutdown under construct/spawn/destruct churn — the
// destructor must drain work, stop the reaper exactly once, and join it
// (TSan verifies the handshake; a hang here means a lost notify).
TEST(ProcessPool, StressReaperShutdownChurn) {
  for (int round = 0; round < 15; ++round) {
    std::atomic<int> done{0};
    {
      ProcessPool pool(2);
      for (int i = 0; i < 4; ++i) {
        pool.spawn({"/bin/true"},
                   [&](const ProcessResult&) { done.fetch_add(1); });
      }
    }
    ASSERT_EQ(done.load(), 4);
  }
}

// Completion callbacks run without the pool mutex held, so they may call
// back into the pool (e.g. spawn follow-up work) without deadlocking; and
// wait_all() must cover work spawned from a callback.
TEST(ProcessPool, CallbackMaySpawnFollowUpWork) {
  ProcessPool pool(2);
  std::atomic<int> chain{0};
  pool.spawn({"/bin/true"}, [&](const ProcessResult&) {
    chain.fetch_add(1);
    pool.spawn({"/bin/true"},
               [&](const ProcessResult&) { chain.fetch_add(1); });
  });
  pool.wait_all();
  EXPECT_EQ(chain.load(), 2);
  EXPECT_EQ(pool.completed(), 2u);
}

}  // namespace
}  // namespace flotilla::local
