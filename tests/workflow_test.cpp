#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <memory>

#include "core/flotilla.hpp"
#include "util/strfmt.hpp"
#include "util/error.hpp"

namespace flotilla::core {
namespace {

struct WorkflowFixture {
  Session session{platform::frontier_spec(), 4, 42};
  PilotManager pmgr{session};
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr_holder;
  TaskManager& tmgr;
  Workflow workflow;

  static TaskManager& make_tmgr(WorkflowFixture& fx) {
    fx.pilot = &fx.pmgr.submit({.nodes = 4, .backends = {{"flux", 1}}});
    bool ok = false;
    fx.pilot->launch([&ok](bool success, const std::string&) { ok = success; });
    fx.session.run(240.0);
    EXPECT_TRUE(ok);
    fx.tmgr_holder = std::make_unique<TaskManager>(fx.session, fx.pilot->agent());
    return *fx.tmgr_holder;
  }

  WorkflowFixture() : tmgr(make_tmgr(*this)), workflow(tmgr) {}
};

std::vector<TaskDescription> batch_of(int n, TaskDescription d) {
  return std::vector<TaskDescription>(static_cast<std::size_t>(n), std::move(d));
}

TaskDescription quick_task(double duration = 1.0) {
  TaskDescription desc;
  desc.demand.cores = 1;
  desc.duration = duration;
  return desc;
}

TEST(Workflow, StagesRunInDependencyOrder) {
  WorkflowFixture fx;
  std::vector<std::string> completed;
  fx.workflow.on_stage_complete(
      [&](const std::string& stage) { completed.push_back(stage); });
  bool drained = false;
  fx.workflow.on_drained([&] { drained = true; });

  fx.workflow.add_stage("dock", batch_of(3, quick_task(10.0)));
  fx.workflow.add_stage("train", batch_of(2, quick_task(5.0)), {"dock"});
  fx.workflow.add_stage("infer", batch_of(4, quick_task(2.0)), {"train"});
  fx.workflow.start();
  fx.session.run();

  EXPECT_EQ(completed,
            (std::vector<std::string>{"dock", "train", "infer"}));
  EXPECT_TRUE(drained);
  EXPECT_EQ(fx.workflow.stages_completed(), 3u);
}

TEST(Workflow, IndependentStagesOverlap) {
  WorkflowFixture fx;
  sim::Time a_first_done = 0, b_first_done = 0;
  fx.workflow.on_task([&](const Task& task) {
    if (task.description().stage == "a" && a_first_done == 0) {
      a_first_done = fx.session.now();
    }
    if (task.description().stage == "b" && b_first_done == 0) {
      b_first_done = fx.session.now();
    }
  });
  fx.workflow.add_stage("a", batch_of(4, quick_task(50.0)));
  fx.workflow.add_stage("b", batch_of(4, quick_task(50.0)));
  fx.workflow.start();
  fx.session.run();
  // Both stages' tasks ran concurrently: first completions within ~1 s.
  EXPECT_LT(std::abs(a_first_done - b_first_done), 5.0);
}

TEST(Workflow, DiamondDependencies) {
  WorkflowFixture fx;
  std::vector<std::string> completed;
  fx.workflow.on_stage_complete(
      [&](const std::string& stage) { completed.push_back(stage); });
  fx.workflow.add_stage("root", batch_of(1, quick_task()));
  fx.workflow.add_stage("left", batch_of(1, quick_task()), {"root"});
  fx.workflow.add_stage("right", batch_of(1, quick_task()), {"root"});
  fx.workflow.add_stage("join", batch_of(1, quick_task()), {"left", "right"});
  fx.workflow.start();
  fx.session.run();
  ASSERT_EQ(completed.size(), 4u);
  EXPECT_EQ(completed.front(), "root");
  EXPECT_EQ(completed.back(), "join");
}

TEST(Workflow, AdaptiveStageAddedOnCompletion) {
  // The §4.2 pattern: when a stage completes, runtime feedback decides to
  // add more work.
  WorkflowFixture fx;
  int iterations = 0;
  fx.workflow.on_stage_complete([&](const std::string& stage) {
    if (stage.rfind("iter.", 0) == 0 && ++iterations < 3) {
      fx.workflow.add_stage(util::cat("iter.", iterations),
                            batch_of(2, quick_task(5.0)), {stage});
    }
  });
  fx.workflow.add_stage("iter.0", batch_of(2, quick_task(5.0)));
  fx.workflow.start();
  fx.session.run();
  EXPECT_EQ(iterations, 3);
  EXPECT_EQ(fx.workflow.stages_completed(), 3u);
  EXPECT_TRUE(fx.workflow.stage_complete("iter.2"));
}

TEST(Workflow, FailedTasksStillCompleteStages) {
  WorkflowFixture fx;
  bool downstream_ran = false;
  fx.workflow.on_stage_complete([&](const std::string& stage) {
    if (stage == "after") downstream_ran = true;
  });
  auto failing = quick_task();
  failing.fail_probability = 1.0;
  fx.workflow.add_stage("flaky", batch_of(2, failing));
  fx.workflow.add_stage("after", batch_of(1, quick_task()), {"flaky"});
  fx.workflow.start();
  fx.session.run();
  EXPECT_TRUE(downstream_ran);
  EXPECT_EQ(fx.workflow.tasks_failed(), 2u);
}

TEST(Workflow, RejectsDuplicateAndUnknownDeps) {
  WorkflowFixture fx;
  fx.workflow.add_stage("a", batch_of(1, quick_task()));
  EXPECT_THROW(fx.workflow.add_stage("a", batch_of(1, quick_task())), util::Error);
  EXPECT_THROW(
      fx.workflow.add_stage("b", batch_of(1, quick_task()), {"missing"}),
      util::Error);
  EXPECT_THROW(fx.workflow.add_stage("empty", std::vector<TaskDescription>{}), util::Error);
}

TEST(Workflow, StageTagsPropagateToTasks) {
  WorkflowFixture fx;
  std::vector<std::string> stages_seen;
  fx.workflow.on_task(
      [&](const Task& task) { stages_seen.push_back(task.description().stage); });
  fx.workflow.add_stage("tagged", batch_of(3, quick_task()));
  fx.workflow.start();
  fx.session.run();
  ASSERT_EQ(stages_seen.size(), 3u);
  for (const auto& s : stages_seen) EXPECT_EQ(s, "tagged");
}

}  // namespace
}  // namespace flotilla::core
