// Backend contract: parameterized conformance suite run against the task
// runtime systems (srun, flux, dragon — plus prrte in the full-stack
// lifecycle suite at the bottom).
//
// The RP agent relies on every TaskBackend honoring the same contract
// (§3.2: "tasks launched via Flux or Dragon continue to pass through RP's
// full task lifecycle"): asynchronous bootstrap reported exactly once,
// exactly one start + one completion event per submitted task, resources
// fully returned after the run, clean failure semantics after shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/spec.hpp"
#include "core/pilot.hpp"
#include "journal/journal.hpp"
#include "journal/recovery.hpp"
#include "core/session.hpp"
#include "core/task_manager.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sched/queue.hpp"
#include "slurm/srun_backend.hpp"
#include "util/strfmt.hpp"

namespace flotilla {
namespace {

struct BackendHarness {
  sim::Engine engine;
  platform::Cluster cluster{platform::frontier_spec(), 4};
  std::unique_ptr<platform::TaskBackend> backend;

  explicit BackendHarness(const std::string& kind) {
    const auto cal = platform::frontier_calibration();
    const platform::NodeRange span{0, 4};
    if (kind == "srun") {
      backend = std::make_unique<slurm::SrunBackend>(engine, cluster, span,
                                                     cal.slurm, 42);
    } else if (kind == "flux") {
      backend = std::make_unique<flux::FluxBackend>(engine, cluster, span, 2,
                                                    cal.flux, 42);
    } else {
      backend = std::make_unique<dragon::DragonBackend>(engine, cluster,
                                                        span, cal.dragon, 42);
    }
  }

  bool bootstrap() {
    int calls = 0;
    bool ok = false;
    backend->bootstrap([&](bool success, const std::string&) {
      ++calls;
      ok = success;
    });
    engine.run(300.0);
    EXPECT_EQ(calls, 1) << "ready handler must fire exactly once";
    return ok;
  }
};

class BackendContract : public ::testing::TestWithParam<std::string> {};

platform::LaunchRequest request_of(int i, double duration = 0.0,
                                   std::int64_t cores = 1) {
  platform::LaunchRequest req;
  req.id = util::cat("task.", i);
  req.demand.cores = cores;
  req.duration = duration;
  return req;
}

TEST_P(BackendContract, BootstrapReportsReadyOnce) {
  BackendHarness harness(GetParam());
  EXPECT_FALSE(harness.backend->healthy());
  EXPECT_TRUE(harness.bootstrap());
  EXPECT_TRUE(harness.backend->healthy());
}

TEST_P(BackendContract, AcceptsExecutables) {
  BackendHarness harness(GetParam());
  EXPECT_TRUE(
      harness.backend->accepts(platform::TaskModality::kExecutable));
}

TEST_P(BackendContract, ExactlyOneStartAndOneCompletionPerTask) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  std::multiset<std::string> starts, completions;
  harness.backend->on_task_start(
      [&](const std::string& id) { starts.insert(id); });
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome& outcome) {
        completions.insert(outcome.id);
        EXPECT_TRUE(outcome.success);
        EXPECT_GE(outcome.finished, outcome.started);
      });
  const int n = 100;
  for (int i = 0; i < n; ++i) harness.backend->submit(request_of(i, 1.0));
  harness.engine.run();
  EXPECT_EQ(starts.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(starts.count(util::cat("task.", i)), 1u);
    EXPECT_EQ(completions.count(util::cat("task.", i)), 1u);
  }
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, ResourcesFullyReturnedAfterRun) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  harness.backend->on_task_complete([](const platform::LaunchOutcome&) {});
  for (int i = 0; i < 300; ++i) {
    harness.backend->submit(request_of(i, 10.0, 2));
  }
  harness.engine.run();
  EXPECT_EQ(harness.cluster.free_cores({0, 4}), 4 * 56);
  EXPECT_EQ(harness.cluster.free_gpus({0, 4}), 4 * 8);
}

TEST_P(BackendContract, StartPrecedesCompletionInVirtualTime) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  sim::Time start_time = -1.0, end_time = -1.0;
  harness.backend->on_task_start(
      [&](const std::string&) { start_time = harness.engine.now(); });
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome&) { end_time = harness.engine.now(); });
  harness.backend->submit(request_of(0, 42.0));
  harness.engine.run();
  ASSERT_GE(start_time, 0.0);
  // Payload duration is respected exactly (it is virtual sleep).
  EXPECT_NEAR(end_time - start_time, 42.0, 1.0);
}

TEST_P(BackendContract, FailureInjectionIsReportedNotDropped) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  int ok = 0, failed = 0;
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome& outcome) {
        outcome.success ? ++ok : ++failed;
      });
  for (int i = 0; i < 300; ++i) {
    auto req = request_of(i);
    req.fail_probability = 0.3;
    harness.backend->submit(req);
  }
  harness.engine.run();
  EXPECT_EQ(ok + failed, 300);
  EXPECT_GT(failed, 30);
  EXPECT_LT(failed, 170);
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, ShutdownFailsInflightAndReportsUnhealthy) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  int completions = 0;
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome&) { ++completions; });
  for (int i = 0; i < 50; ++i) {
    harness.backend->submit(request_of(i, 1000.0));
  }
  harness.engine.run(harness.engine.now() + 30.0);
  harness.backend->shutdown();
  harness.engine.run();
  EXPECT_FALSE(harness.backend->healthy());
  EXPECT_EQ(completions, 50);  // every task gets a terminal event
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, DeterministicAcrossIdenticalRuns) {
  auto fingerprint = [](const std::string& kind) {
    BackendHarness harness(kind);
    EXPECT_TRUE(harness.bootstrap());
    double sum = 0.0;
    harness.backend->on_task_complete(
        [&](const platform::LaunchOutcome& outcome) {
          sum += outcome.started + 3.0 * outcome.finished;
        });
    for (int i = 0; i < 200; ++i) {
      harness.backend->submit(request_of(i, 5.0));
    }
    harness.engine.run();
    return sum;
  };
  EXPECT_DOUBLE_EQ(fingerprint(GetParam()), fingerprint(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContract,
                         ::testing::Values("srun", "flux", "dragon"),
                         [](const auto& param_info) { return param_info.param; });

// ----------------------------------------------------- queue semantics
//
// Every self-scheduling backend's pending queue is a sched::TaskQueue
// behind a shared QueuePolicy (src/sched/queue.hpp); these tests exercise
// priority and backfill semantics through each backend's public surface.
// srun is the deliberate exception: slurmctld keeps no server-side queue
// at all — blocked clients poll with backoff — so no queue policy can
// apply there (documented by the last test).

platform::LaunchRequest request_with_priority(const std::string& id,
                                              std::int64_t cores,
                                              double duration, int priority) {
  platform::LaunchRequest req;
  req.id = id;
  req.demand.cores = cores;
  req.duration = duration;
  req.priority = priority;
  return req;
}

TEST(QueueSemantics, FluxOrdersBlockedJobsByPriorityWithFifoTies) {
  // One partition, so every job shares a single pending queue.
  sim::Engine engine;
  platform::Cluster cluster(platform::frontier_spec(), 4);
  flux::FluxBackend backend(engine, cluster, {0, 4}, 1,
                            platform::frontier_calibration().flux, 42);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(300.0);
  ASSERT_TRUE(ready);
  std::vector<std::string> starts;
  backend.on_task_start([&](const std::string& id) { starts.push_back(id); });
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  // A whole-allocation blocker runs; whole-allocation jobs submitted
  // behind it queue (backfill cannot help — nothing fits).
  backend.submit(request_with_priority("blocker", 224, 50.0, 16));
  engine.run(engine.now() + 10.0);
  backend.submit(request_with_priority("low", 224, 1.0, 8));
  backend.submit(request_with_priority("mid.0", 224, 1.0, 16));
  backend.submit(request_with_priority("mid.1", 224, 1.0, 16));
  backend.submit(request_with_priority("high", 224, 1.0, 24));
  engine.run();
  // Shared PriorityFifoPolicy: higher priority first, FIFO within a tie.
  EXPECT_EQ(starts, (std::vector<std::string>{"blocker", "high", "mid.0",
                                              "mid.1", "low"}));
}

TEST(QueueSemantics, FluxBackfillDepthGovernsHeadOfLineBlocking) {
  // A blocked whole-allocation job at the queue head: strict FCFS
  // (depth 1) idles the machine behind it, while a deeper scan lets the
  // single-core tasks backfill around it. Both depths run through the
  // same BackfillPolicy — only the configured depth differs.
  auto small_start_span = [](int backfill_depth) {
    sim::Engine engine;
    platform::Cluster cluster(platform::frontier_spec(), 4);
    flux::FluxBackend backend(engine, cluster, {0, 4}, 1,
                              platform::frontier_calibration().flux, 42,
                              nullptr, backfill_depth);
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(300.0);
    EXPECT_TRUE(ready);
    const sim::Time base = engine.now();
    sim::Time last_small_start = 0.0;
    backend.on_task_start([&](const std::string& id) {
      if (id.rfind("small.", 0) == 0) last_small_start = engine.now() - base;
    });
    backend.on_task_complete([](const platform::LaunchOutcome&) {});
    // The running job leaves 24 cores free; the whole-allocation job at
    // the queue head cannot start, but the single-core tasks behind it
    // could — if the scan depth lets the scheduler reach them.
    backend.submit(request_with_priority("running", 200, 100.0, 16));
    backend.submit(request_with_priority("blocked", 224, 1.0, 16));
    for (int i = 0; i < 10; ++i) {
      backend.submit(request_with_priority(util::cat("small.", i), 1, 1.0, 16));
    }
    engine.run();
    return last_small_start;
  };
  EXPECT_GT(small_start_span(1), 90.0);   // waited for the 100 s head job
  EXPECT_LT(small_start_span(64), 50.0);  // backfilled around it
}

TEST(QueueSemantics, DragonDefaultQueueIsFifoRegardlessOfPriority) {
  BackendHarness harness("dragon");
  ASSERT_TRUE(harness.bootstrap());
  std::vector<std::string> starts;
  harness.backend->on_task_start(
      [&](const std::string& id) { starts.push_back(id); });
  harness.backend->on_task_complete([](const platform::LaunchOutcome&) {});
  harness.backend->submit(request_with_priority("blocker", 224, 60.0, 16));
  harness.engine.run(harness.engine.now() + 20.0);
  harness.backend->submit(request_with_priority("low", 224, 1.0, 8));
  harness.backend->submit(request_with_priority("high", 224, 1.0, 24));
  harness.engine.run();
  // Dragon has no internal scheduler: capacity waits drain in arrival
  // order even when priorities differ.
  EXPECT_EQ(starts,
            (std::vector<std::string>{"blocker", "low", "high"}));
}

TEST(QueueSemantics, DragonHonorsInjectedPriorityPolicy) {
  sim::Engine engine;
  platform::Cluster cluster(platform::frontier_spec(), 4);
  dragon::DragonBackend backend(engine, cluster, {0, 4},
                                platform::frontier_calibration().dragon, 42);
  // Same shared policy type flux uses — swapped in through the white-box
  // hook, exercising the whole queue path under priority ordering.
  backend.runtime(0).set_queue_policy(
      std::make_unique<sched::PriorityFifoPolicy>());
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(300.0);
  ASSERT_TRUE(ready);
  std::vector<std::string> starts;
  backend.on_task_start([&](const std::string& id) { starts.push_back(id); });
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  backend.submit(request_with_priority("blocker", 224, 60.0, 16));
  engine.run(engine.now() + 20.0);
  backend.submit(request_with_priority("low", 224, 1.0, 8));
  backend.submit(request_with_priority("high", 224, 1.0, 24));
  engine.run();
  EXPECT_EQ(starts,
            (std::vector<std::string>{"blocker", "high", "low"}));
}

// ------------------------------------------- failure/cancel contract
//
// The full-stack lifecycle contract, run against all four runtime systems
// through Session/Pilot/TaskManager: a failing task reaches exactly one
// terminal state (retries notwithstanding), cancelling an unknown task is
// a no-op, and double-cancel never double-finalizes.

struct StackHarness {
  core::Session session{platform::frontier_spec(), 4, 42};
  core::PilotManager pmgr{session};
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;

  explicit StackHarness(const std::string& backend) {
    core::PilotDescription pd;
    pd.nodes = 4;
    pd.backends = {{backend}};
    pilot = &pmgr.submit(std::move(pd));
    bool ready = false;
    pilot->launch([&](bool ok, const std::string&) { ready = ok; });
    session.run(600.0);
    EXPECT_TRUE(ready) << backend << " pilot failed to launch";
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }
};

class LifecycleContract : public ::testing::TestWithParam<std::string> {};

TEST_P(LifecycleContract, FailingTaskReachesExactlyOneTerminalState) {
  StackHarness harness(GetParam());
  std::multiset<std::string> completions;
  harness.tmgr->on_complete(
      [&](const core::Task& task) { completions.insert(task.uid()); });
  std::vector<std::string> uids;
  for (int i = 0; i < 5; ++i) {
    core::TaskDescription td;
    td.duration = 1.0;
    td.fail_probability = 1.0;  // every attempt fails
    td.max_retries = 1;
    uids.push_back(harness.tmgr->submit(std::move(td)));
  }
  harness.session.run();
  ASSERT_EQ(completions.size(), 5u);
  for (const auto& uid : uids) {
    EXPECT_EQ(completions.count(uid), 1u)
        << uid << " must finalize exactly once";
    const auto& task = harness.tmgr->task(uid);
    EXPECT_EQ(task.state(), core::TaskState::kFailed);
    EXPECT_EQ(task.attempts(), 2);  // initial attempt + one retry
  }
}

TEST_P(LifecycleContract, CancelUnknownTaskIsNoOp) {
  StackHarness harness(GetParam());
  int completions = 0;
  harness.tmgr->on_complete([&](const core::Task&) { ++completions; });
  EXPECT_FALSE(harness.tmgr->cancel("task.bogus"));
  harness.session.run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(harness.tmgr->submitted(), 0u);
}

TEST_P(LifecycleContract, DoubleCancelIsIdempotent) {
  StackHarness harness(GetParam());
  int completions = 0;
  harness.tmgr->on_complete([&](const core::Task& task) {
    ++completions;
    EXPECT_EQ(task.state(), core::TaskState::kCanceled);
  });
  core::TaskDescription td;
  td.duration = 1000.0;
  const auto uid = harness.tmgr->submit(std::move(td));
  EXPECT_TRUE(harness.tmgr->cancel(uid));
  harness.tmgr->cancel(uid);  // second request must not double-finalize
  harness.session.run();
  EXPECT_EQ(completions, 1);
  // Cancelling a task that already reached its terminal state is refused.
  EXPECT_FALSE(harness.tmgr->cancel(uid));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LifecycleContract,
                         ::testing::Values("srun", "flux", "dragon", "prrte"),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------- recovery contract
//
// Every runtime system must come back from a journal-replay recovery
// (docs/recovery.md) indistinguishable from a run that never crashed:
// the controller dies mid-campaign, restores from the surviving journal
// prefix, and the recovered run must finish with only legal lifecycle
// edges, exactly one terminal edge per task, and a restore_summary()
// digest equal to the uninterrupted same-seed run's.

class RecoveryContract : public ::testing::TestWithParam<std::string> {};

check::ScenarioSpec recovery_spec(const std::string& backend) {
  check::ScenarioSpec spec;
  spec.seed = 77;
  spec.nodes = 4;
  spec.backends = {{backend}};
  spec.workload = "sleep";
  spec.tasks = 20;
  spec.duration = 2.0;
  return spec;
}

TEST_P(RecoveryContract, RestoresFromMidCampaignJournal) {
  const auto spec = recovery_spec(GetParam());
  check::RunOptions jopts;
  jopts.journal = true;

  // The uninterrupted reference run.
  const auto reference = check::run_scenario(spec, jopts);
  ASSERT_TRUE(reference.ok()) << reference.violations.front().to_string();
  ASSERT_FALSE(reference.backend_summaries.empty());

  // Crash mid-campaign: roughly halfway through the journal, when tasks
  // are demonstrably in flight.
  const auto records = static_cast<std::uint64_t>(std::count(
      reference.journal.begin(), reference.journal.end(), '\n'));
  check::RunOptions copts = jopts;
  copts.crash_at = records / 2;
  const auto crashed = check::run_scenario(spec, copts);
  ASSERT_TRUE(crashed.crashed);

  const journal::RecoveryManager rm(crashed.journal);
  EXPECT_GT(rm.image().tasks_in_flight(), 0u)
      << "the crash point must leave a genuinely mid-campaign state";

  // Recover: re-execute, validating every record against the prefix. The
  // invariant monitor runs throughout, so any illegal lifecycle edge on
  // the recovered path is a violation.
  check::RunOptions ropts;
  ropts.journal = true;
  ropts.recovery = &rm;
  const auto recovered =
      check::run_scenario(check::ScenarioSpec::parse(rm.spec_line()), ropts);
  EXPECT_TRUE(recovered.ok()) << recovered.violations.front().to_string();

  // Exactly one terminal edge per task in the recovered journal.
  const auto parsed = journal::read(recovered.journal);
  ASSERT_TRUE(parsed.intact());
  std::map<std::string, int> terminal_edges;
  for (const auto& record : parsed.records) {
    if (record.type != journal::RecordType::kTransition) continue;
    if (record.to == "DONE" || record.to == "FAILED" ||
        record.to == "CANCELED") {
      ++terminal_edges[record.uid];
    }
  }
  EXPECT_EQ(terminal_edges.size(), static_cast<std::size_t>(spec.tasks));
  for (const auto& [uid, edges] : terminal_edges) {
    EXPECT_EQ(edges, 1) << uid << " must reach exactly one terminal state";
  }

  // The recovered run is byte- and digest-equivalent to never crashing.
  EXPECT_EQ(recovered.journal, reference.journal);
  EXPECT_EQ(recovered.backend_summaries, reference.backend_summaries)
      << GetParam() << " restore_summary() diverged after recovery";
}

TEST_P(RecoveryContract, RestoreSummaryReflectsBackendState) {
  // The digest itself: deterministic, prefixed with the backend name, and
  // equal across same-seed runs (the RecoveryContract's comparison key).
  const auto spec = recovery_spec(GetParam());
  const auto first = check::run_scenario(spec);
  const auto second = check::run_scenario(spec);
  ASSERT_FALSE(first.backend_summaries.empty());
  EXPECT_EQ(first.backend_summaries, second.backend_summaries);
  for (const auto& summary : first.backend_summaries) {
    EXPECT_NE(summary.find("|healthy=1"), std::string::npos) << summary;
    EXPECT_NE(summary.find("|inflight=0"), std::string::npos) << summary;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RecoveryContract,
                         ::testing::Values("srun", "flux", "dragon", "prrte"),
                         [](const auto& param_info) { return param_info.param; });

TEST(QueueSemantics, SrunHasNoServerQueueBlockedClientsPoll) {
  BackendHarness harness("srun");
  ASSERT_TRUE(harness.bootstrap());
  int completions = 0;
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome& outcome) {
        EXPECT_TRUE(outcome.success);
        ++completions;
      });
  // 100 four-core steps over 224 cores: the overflow cannot queue in the
  // controller — each blocked srun client polls with backoff, and every
  // poll is another RPC the controller must serve.
  for (int i = 0; i < 100; ++i) {
    harness.backend->submit(request_of(i, 5.0, 4));
  }
  harness.engine.run();
  EXPECT_EQ(completions, 100);
  auto& srun = static_cast<slurm::SrunBackend&>(*harness.backend);
  EXPECT_EQ(srun.controller().steps_created(), 100u);
  EXPECT_GT(srun.controller().retries_served(), 0u);
}

}  // namespace
}  // namespace flotilla
