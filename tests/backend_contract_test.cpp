// Backend contract: parameterized conformance suite run against all three
// task runtime systems (srun, flux, dragon).
//
// The RP agent relies on every TaskBackend honoring the same contract
// (§3.2: "tasks launched via Flux or Dragon continue to pass through RP's
// full task lifecycle"): asynchronous bootstrap reported exactly once,
// exactly one start + one completion event per submitted task, resources
// fully returned after the run, clean failure semantics after shutdown.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "slurm/srun_backend.hpp"
#include "util/strfmt.hpp"

namespace flotilla {
namespace {

struct BackendHarness {
  sim::Engine engine;
  platform::Cluster cluster{platform::frontier_spec(), 4};
  std::unique_ptr<platform::TaskBackend> backend;

  explicit BackendHarness(const std::string& kind) {
    const auto cal = platform::frontier_calibration();
    const platform::NodeRange span{0, 4};
    if (kind == "srun") {
      backend = std::make_unique<slurm::SrunBackend>(engine, cluster, span,
                                                     cal.slurm, 42);
    } else if (kind == "flux") {
      backend = std::make_unique<flux::FluxBackend>(engine, cluster, span, 2,
                                                    cal.flux, 42);
    } else {
      backend = std::make_unique<dragon::DragonBackend>(engine, cluster,
                                                        span, cal.dragon, 42);
    }
  }

  bool bootstrap() {
    int calls = 0;
    bool ok = false;
    backend->bootstrap([&](bool success, const std::string&) {
      ++calls;
      ok = success;
    });
    engine.run(300.0);
    EXPECT_EQ(calls, 1) << "ready handler must fire exactly once";
    return ok;
  }
};

class BackendContract : public ::testing::TestWithParam<std::string> {};

platform::LaunchRequest request_of(int i, double duration = 0.0,
                                   std::int64_t cores = 1) {
  platform::LaunchRequest req;
  req.id = util::cat("task.", i);
  req.demand.cores = cores;
  req.duration = duration;
  return req;
}

TEST_P(BackendContract, BootstrapReportsReadyOnce) {
  BackendHarness harness(GetParam());
  EXPECT_FALSE(harness.backend->healthy());
  EXPECT_TRUE(harness.bootstrap());
  EXPECT_TRUE(harness.backend->healthy());
}

TEST_P(BackendContract, AcceptsExecutables) {
  BackendHarness harness(GetParam());
  EXPECT_TRUE(
      harness.backend->accepts(platform::TaskModality::kExecutable));
}

TEST_P(BackendContract, ExactlyOneStartAndOneCompletionPerTask) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  std::multiset<std::string> starts, completions;
  harness.backend->on_task_start(
      [&](const std::string& id) { starts.insert(id); });
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome& outcome) {
        completions.insert(outcome.id);
        EXPECT_TRUE(outcome.success);
        EXPECT_GE(outcome.finished, outcome.started);
      });
  const int n = 100;
  for (int i = 0; i < n; ++i) harness.backend->submit(request_of(i, 1.0));
  harness.engine.run();
  EXPECT_EQ(starts.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(starts.count(util::cat("task.", i)), 1u);
    EXPECT_EQ(completions.count(util::cat("task.", i)), 1u);
  }
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, ResourcesFullyReturnedAfterRun) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  harness.backend->on_task_complete([](const platform::LaunchOutcome&) {});
  for (int i = 0; i < 300; ++i) {
    harness.backend->submit(request_of(i, 10.0, 2));
  }
  harness.engine.run();
  EXPECT_EQ(harness.cluster.free_cores({0, 4}), 4 * 56);
  EXPECT_EQ(harness.cluster.free_gpus({0, 4}), 4 * 8);
}

TEST_P(BackendContract, StartPrecedesCompletionInVirtualTime) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  sim::Time start_time = -1.0, end_time = -1.0;
  harness.backend->on_task_start(
      [&](const std::string&) { start_time = harness.engine.now(); });
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome&) { end_time = harness.engine.now(); });
  harness.backend->submit(request_of(0, 42.0));
  harness.engine.run();
  ASSERT_GE(start_time, 0.0);
  // Payload duration is respected exactly (it is virtual sleep).
  EXPECT_NEAR(end_time - start_time, 42.0, 1.0);
}

TEST_P(BackendContract, FailureInjectionIsReportedNotDropped) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  int ok = 0, failed = 0;
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome& outcome) {
        outcome.success ? ++ok : ++failed;
      });
  for (int i = 0; i < 300; ++i) {
    auto req = request_of(i);
    req.fail_probability = 0.3;
    harness.backend->submit(req);
  }
  harness.engine.run();
  EXPECT_EQ(ok + failed, 300);
  EXPECT_GT(failed, 30);
  EXPECT_LT(failed, 170);
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, ShutdownFailsInflightAndReportsUnhealthy) {
  BackendHarness harness(GetParam());
  ASSERT_TRUE(harness.bootstrap());
  int completions = 0;
  harness.backend->on_task_complete(
      [&](const platform::LaunchOutcome&) { ++completions; });
  for (int i = 0; i < 50; ++i) {
    harness.backend->submit(request_of(i, 1000.0));
  }
  harness.engine.run(harness.engine.now() + 30.0);
  harness.backend->shutdown();
  harness.engine.run();
  EXPECT_FALSE(harness.backend->healthy());
  EXPECT_EQ(completions, 50);  // every task gets a terminal event
  EXPECT_EQ(harness.backend->inflight(), 0u);
}

TEST_P(BackendContract, DeterministicAcrossIdenticalRuns) {
  auto fingerprint = [](const std::string& kind) {
    BackendHarness harness(kind);
    EXPECT_TRUE(harness.bootstrap());
    double sum = 0.0;
    harness.backend->on_task_complete(
        [&](const platform::LaunchOutcome& outcome) {
          sum += outcome.started + 3.0 * outcome.finished;
        });
    for (int i = 0; i < 200; ++i) {
      harness.backend->submit(request_of(i, 5.0));
    }
    harness.engine.run();
    return sum;
  };
  EXPECT_DOUBLE_EQ(fingerprint(GetParam()), fingerprint(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContract,
                         ::testing::Values("srun", "flux", "dragon"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace flotilla
