// Property-based tests: randomized workloads checked against invariants
// rather than fixed expectations.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "platform/cluster.hpp"
#include "sched/placement_policy.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/stats.hpp"

namespace flotilla {
namespace {

// -------------------------------------------------- placement invariants

// Property: any interleaving of successful placements and releases keeps
// per-node free counts consistent, never double-assigns a core/GPU, and
// ends with a fully free cluster.
class PlacementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementProperty, RandomPlaceReleaseKeepsClusterConsistent) {
  sim::RngStream rng(GetParam());
  const int nodes = static_cast<int>(rng.uniform_int(1, 32));
  platform::Cluster cluster(platform::frontier_spec(), nodes);
  const auto range = cluster.all_nodes();
  platform::NodeId cursor = 0;
  std::vector<platform::Placement> held;
  std::int64_t held_cores = 0, held_gpus = 0;

  for (int step = 0; step < 500; ++step) {
    const bool place = held.empty() || rng.bernoulli(0.6);
    if (place) {
      platform::ResourceDemand demand;
      demand.cores = rng.uniform_int(0, 56 * 3);
      demand.gpus = rng.uniform_int(0, 12);
      if (rng.bernoulli(0.2)) demand.cores_per_node = 56;  // MPI chunked
      auto placement =
          sched::linear_try_place(cluster, range, demand, &cursor);
      if (!placement) continue;
      // Exactly the demanded resources are claimed.
      ASSERT_EQ(placement->total_cores(), demand.cores);
      ASSERT_EQ(placement->total_gpus(), demand.gpus);
      // No slice overlaps another held slice on the same node.
      for (const auto& mine : placement->slices) {
        for (const auto& other : held) {
          for (const auto& slice : other.slices) {
            if (slice.node != mine.node) continue;
            ASSERT_EQ(slice.core_mask & mine.core_mask, 0u);
            ASSERT_EQ(slice.gpu_mask & mine.gpu_mask, 0);
          }
        }
      }
      held_cores += placement->total_cores();
      held_gpus += placement->total_gpus();
      held.push_back(std::move(*placement));
    } else {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      held_cores -= held[victim].total_cores();
      held_gpus -= held[victim].total_gpus();
      cluster.release(held[victim]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Global accounting matches the ledger at every step.
    ASSERT_EQ(cluster.free_cores(range),
              static_cast<std::int64_t>(nodes) * 56 - held_cores);
    ASSERT_EQ(cluster.free_gpus(range),
              static_cast<std::int64_t>(nodes) * 8 - held_gpus);
  }
  for (const auto& placement : held) {
    cluster.release(placement);
  }
  ASSERT_EQ(cluster.free_cores(range), static_cast<std::int64_t>(nodes) * 56);
  ASSERT_EQ(cluster.free_gpus(range), static_cast<std::int64_t>(nodes) * 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// Property: the consistency invariants above hold for every placement
// policy, not just the first-fit reference — any interleaving of policy
// placements and releases keeps exact demand accounting, never overlaps
// slices, and drains back to a fully free cluster.
class PlacementPolicyProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, sched::PlacementPolicyKind>> {};

TEST_P(PlacementPolicyProperty, RandomPlaceReleaseKeepsClusterConsistent) {
  const auto [seed, kind] = GetParam();
  sim::RngStream rng(seed);
  const int nodes = static_cast<int>(rng.uniform_int(1, 32));
  platform::Cluster cluster(platform::frontier_spec(), nodes);
  const auto range = cluster.all_nodes();
  const auto policy = sched::make_placement_policy(kind);
  sched::FreeResourceIndex index(cluster, range);
  platform::NodeId cursor = 0;
  std::vector<platform::Placement> held;
  std::int64_t held_cores = 0, held_gpus = 0;

  for (int step = 0; step < 500; ++step) {
    const bool place = held.empty() || rng.bernoulli(0.6);
    if (place) {
      platform::ResourceDemand demand;
      demand.cores = rng.uniform_int(0, 56 * 3);
      demand.gpus = rng.uniform_int(0, 12);
      if (rng.bernoulli(0.2)) demand.cores_per_node = 56;  // MPI chunked
      sched::PlacementInput in{cluster, range, &cursor, &index};
      auto placement = policy->place(in, demand);
      if (!placement) continue;
      ASSERT_EQ(placement->total_cores(), demand.cores);
      ASSERT_EQ(placement->total_gpus(), demand.gpus);
      for (const auto& mine : placement->slices) {
        for (const auto& other : held) {
          for (const auto& slice : other.slices) {
            if (slice.node != mine.node) continue;
            ASSERT_EQ(slice.core_mask & mine.core_mask, 0u);
            ASSERT_EQ(slice.gpu_mask & mine.gpu_mask, 0);
          }
        }
      }
      held_cores += placement->total_cores();
      held_gpus += placement->total_gpus();
      held.push_back(std::move(*placement));
    } else {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      held_cores -= held[victim].total_cores();
      held_gpus -= held[victim].total_gpus();
      cluster.release(held[victim]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(cluster.free_cores(range),
              static_cast<std::int64_t>(nodes) * 56 - held_cores);
    ASSERT_EQ(cluster.free_gpus(range),
              static_cast<std::int64_t>(nodes) * 8 - held_gpus);
    // The incrementally maintained index tracks ground truth throughout.
    int truth_max_cores = 0;
    for (int n = 0; n < nodes; ++n) {
      truth_max_cores = std::max(truth_max_cores, cluster.node(n).free_cores());
    }
    ASSERT_EQ(index.max_free_cores(), truth_max_cores);
  }
  for (const auto& placement : held) {
    cluster.release(placement);
  }
  ASSERT_EQ(cluster.free_cores(range), static_cast<std::int64_t>(nodes) * 56);
  ASSERT_EQ(cluster.free_gpus(range), static_cast<std::int64_t>(nodes) * 8);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesPolicies, PlacementPolicyProperty,
    ::testing::Combine(
        ::testing::Range<std::uint64_t>(1, 9),
        ::testing::Values(sched::PlacementPolicyKind::kFirstFit,
                          sched::PlacementPolicyKind::kBestFit,
                          sched::PlacementPolicyKind::kGpuPack)));

// Property: tightly coupled placement is all-or-nothing — on failure no
// node loses capacity.
TEST(PlacementProperty, ChunkedPlacementIsAtomic) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::RngStream rng(seed);
    platform::Cluster cluster(platform::frontier_spec(), 8);
    // Fragment the cluster randomly.
    for (int i = 0; i < 8; ++i) {
      cluster.node(i).allocate(static_cast<int>(rng.uniform_int(0, 56)), 0);
    }
    const auto before = cluster.free_cores(cluster.all_nodes());
    const auto placement = sched::linear_try_place(
        cluster, cluster.all_nodes(), {56 * 6, 0, 56});
    if (placement) {
      EXPECT_EQ(cluster.free_cores(cluster.all_nodes()),
                before - 56 * 6);
      cluster.release(*placement);
    }
    EXPECT_EQ(cluster.free_cores(cluster.all_nodes()), before);
  }
}

// ----------------------------------------------------- engine invariants

// Property: virtual time is non-decreasing across any random schedule,
// including events scheduled from within events.
class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, TimeIsMonotoneUnderRandomSchedules) {
  sim::RngStream rng(GetParam());
  sim::Engine engine;
  double last = -1.0;
  int spawned = 0;
  std::function<void()> check = [&] {
    EXPECT_GE(engine.now(), last);
    last = engine.now();
    if (spawned < 2000 && rng.bernoulli(0.7)) {
      ++spawned;
      engine.in(rng.uniform(0.0, 10.0), check);
    }
  };
  for (int i = 0; i < 50; ++i) {
    engine.at(rng.uniform(0.0, 100.0), check);
  }
  engine.run();
  EXPECT_TRUE(engine.empty());
}

TEST_P(EngineProperty, CancelledEventsNeverFire) {
  sim::RngStream rng(GetParam());
  sim::Engine engine;
  std::vector<sim::Engine::EventId> ids;
  std::vector<bool> cancelled;
  int fired_cancelled = 0;
  for (int i = 0; i < 300; ++i) {
    const auto idx = ids.size();
    cancelled.push_back(false);
    ids.push_back(engine.at(rng.uniform(0.0, 50.0), [&, idx] {
      if (cancelled[idx]) ++fired_cancelled;
    }));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.bernoulli(0.5)) {
      cancelled[i] = engine.cancel(ids[i]);
    }
  }
  engine.run();
  EXPECT_EQ(fired_cancelled, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --------------------------------------------------- resource invariants

// Property: under random acquire/release traffic the resource never goes
// negative, never exceeds capacity, and eventually serves every waiter.
class ResourceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResourceProperty, ConservationUnderRandomTraffic) {
  sim::RngStream rng(GetParam());
  sim::Engine engine;
  const std::int64_t capacity = rng.uniform_int(4, 64);
  sim::Resource resource(engine, capacity);
  int granted = 0;
  const int total = 400;
  for (int i = 0; i < total; ++i) {
    const auto amount = rng.uniform_int(1, capacity);
    const double hold = rng.uniform(0.1, 5.0);
    engine.at(rng.uniform(0.0, 50.0), [&, amount, hold] {
      resource.acquire(amount, [&, amount, hold] {
        ++granted;
        ASSERT_GE(resource.available(), 0);
        ASSERT_LE(resource.available(), capacity);
        engine.in(hold, [&, amount] { resource.release(amount); });
      });
    });
  }
  engine.run();
  EXPECT_EQ(granted, total);
  EXPECT_EQ(resource.available(), capacity);
  EXPECT_EQ(resource.queue_length(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------------------- stats sanity

// Property: RateSeries aggregates are consistent with first principles for
// random event streams.
class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, RateSeriesAggregatesConsistent) {
  sim::RngStream rng(GetParam());
  sim::RateSeries series(1.0);
  std::vector<double> times;
  const int n = static_cast<int>(rng.uniform_int(2, 2000));
  for (int i = 0; i < n; ++i) times.push_back(rng.uniform(0.0, 300.0));
  std::sort(times.begin(), times.end());
  for (const double t : times) series.record(t);

  EXPECT_EQ(series.total(), static_cast<std::uint64_t>(n));
  std::uint64_t sum = 0;
  for (const auto b : series.bins()) sum += b;
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
  EXPECT_GE(series.peak_rate(), series.mean_nonzero_rate());
  EXPECT_GE(series.mean_nonzero_rate(), 1.0);  // nonzero bins have >= 1
  const double window = times.back() - times.front();
  if (window > 0) {
    EXPECT_NEAR(series.window_rate(), n / window, 1e-9);
  }
}

TEST_P(StatsProperty, TimeWeightedIntegralMatchesManualSum) {
  sim::RngStream rng(GetParam());
  sim::TimeWeighted tw;
  double t = 0.0, value = 0.0, manual = 0.0;
  tw.set(0.0, 0.0);
  for (int i = 0; i < 200; ++i) {
    const double dt = rng.uniform(0.0, 3.0);
    manual += value * dt;
    t += dt;
    value = rng.uniform(0.0, 100.0);
    tw.set(t, value);
  }
  EXPECT_NEAR(tw.integral(t), manual, 1e-6 * std::max(1.0, manual));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace flotilla
