// Tests for the AsyncFlow future/continuation API.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/asyncflow.hpp"
#include "core/flotilla.hpp"
#include "util/error.hpp"

namespace flotilla::core {
namespace {

struct FlowFixture {
  Session session{platform::frontier_spec(), 4, 42};
  PilotManager pmgr{session};
  Pilot* pilot = nullptr;
  std::unique_ptr<TaskManager> tmgr;
  std::unique_ptr<AsyncFlow> flow;

  FlowFixture() {
    pilot = &pmgr.submit({.nodes = 4, .backends = {{"flux", 1}}});
    pilot->launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    tmgr = std::make_unique<TaskManager>(session, pilot->agent());
    flow = std::make_unique<AsyncFlow>(*tmgr);
  }

  TaskDescription quick(double duration = 5.0) {
    TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = duration;
    return desc;
  }
};

TEST(AsyncFlow, SubmitReturnsFutureThatCompletes) {
  FlowFixture fx;
  auto future = fx.flow->submit(fx.quick());
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.done());
  EXPECT_EQ(fx.flow->inflight(), 1u);
  fx.session.run();
  EXPECT_TRUE(future.done());
  EXPECT_TRUE(future.succeeded());
  EXPECT_EQ(fx.flow->inflight(), 0u);
}

TEST(AsyncFlow, ThenChainsFollowUpWork) {
  FlowFixture fx;
  std::vector<std::string> order;
  auto first = fx.flow->submit(fx.quick(10.0));
  first.then([&](const Task& task) {
    order.push_back("first:" + std::string(to_string(task.state())));
    fx.flow->submit(fx.quick(5.0)).then([&](const Task&) {
      order.push_back("second");
    });
  });
  fx.session.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first:DONE");
  EXPECT_EQ(order[1], "second");
}

TEST(AsyncFlow, ThenAfterCompletionFiresImmediately) {
  FlowFixture fx;
  auto future = fx.flow->submit(fx.quick(1.0));
  fx.session.run();
  ASSERT_TRUE(future.done());
  bool fired = false;
  future.then([&](const Task& task) {
    fired = true;
    EXPECT_EQ(task.state(), TaskState::kDone);
  });
  EXPECT_FALSE(fired);  // delivered via the event queue, never inline
  fx.session.run();
  EXPECT_TRUE(fired);
}

TEST(AsyncFlow, MultipleContinuationsRunInOrder) {
  FlowFixture fx;
  std::vector<int> order;
  auto future = fx.flow->submit(fx.quick());
  future.then([&](const Task&) { order.push_back(1); });
  future.then([&](const Task&) { order.push_back(2); });
  future.then([&](const Task&) { order.push_back(3); });
  fx.session.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(AsyncFlow, WhenAllJoinsAGroup) {
  FlowFixture fx;
  std::vector<TaskFuture> ensemble;
  for (int i = 0; i < 8; ++i) {
    ensemble.push_back(fx.flow->submit(fx.quick(10.0 + i)));
  }
  bool joined = false;
  fx.flow->when_all(ensemble, [&] {
    joined = true;
    for (const auto& f : ensemble) EXPECT_TRUE(f.done());
  });
  fx.session.run();
  EXPECT_TRUE(joined);
}

TEST(AsyncFlow, WhenAllWithAlreadyDoneFutures) {
  FlowFixture fx;
  auto a = fx.flow->submit(fx.quick(1.0));
  fx.session.run();
  bool joined = false;
  fx.flow->when_all({a}, [&] { joined = true; });
  fx.session.run();
  EXPECT_TRUE(joined);
}

TEST(AsyncFlow, WhenAnyFiresExactlyOnceWithTheWinner) {
  FlowFixture fx;
  auto slow = fx.flow->submit(fx.quick(100.0));
  auto fast = fx.flow->submit(fx.quick(5.0));
  int fires = 0;
  std::string winner;
  fx.flow->when_any({slow, fast}, [&](const Task& task) {
    ++fires;
    winner = task.uid();
  });
  fx.session.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(winner, fast.uid());
}

TEST(AsyncFlow, FailedTasksReportThroughFutures) {
  FlowFixture fx;
  auto desc = fx.quick();
  desc.fail_probability = 1.0;
  auto future = fx.flow->submit(std::move(desc));
  TaskState seen = TaskState::kNew;
  future.then([&](const Task& task) { seen = task.state(); });
  fx.session.run();
  EXPECT_TRUE(future.done());
  EXPECT_FALSE(future.succeeded());
  EXPECT_EQ(seen, TaskState::kFailed);
}

TEST(AsyncFlow, InvalidFutureMisuseThrows) {
  FlowFixture fx;
  TaskFuture invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(invalid.then([](const Task&) {}), util::Error);
  EXPECT_THROW(invalid.uid(), util::Error);
  EXPECT_THROW(fx.flow->when_all({invalid}, [] {}), util::Error);
  EXPECT_THROW(fx.flow->when_any({}, [](const Task&) {}), util::Error);
}

TEST(AsyncFlow, PipelinePattern) {
  // The RAF idiom: a dependency chain expressed as continuations, with a
  // fan-out/fan-in in the middle.
  FlowFixture fx;
  bool campaign_done = false;
  auto prepare = fx.flow->submit(fx.quick(5.0));
  prepare.then([&](const Task&) {
    std::vector<TaskFuture> sims;
    for (int i = 0; i < 6; ++i) {
      sims.push_back(fx.flow->submit(fx.quick(20.0)));
    }
    fx.flow->when_all(sims, [&] {
      fx.flow->submit(fx.quick(3.0)).then([&](const Task&) {
        campaign_done = true;
      });
    });
  });
  fx.session.run();
  EXPECT_TRUE(campaign_done);
  // prepare(5) -> sims(20) -> reduce(3): makespan spans the chain.
  const auto& metrics = fx.pilot->agent().profiler().metrics();
  EXPECT_EQ(metrics.tasks_done(), 8u);
  EXPECT_GT(metrics.makespan(), 28.0);
}

}  // namespace
}  // namespace flotilla::core
