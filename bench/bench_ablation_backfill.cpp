// Ablation: what is backfill worth on a heterogeneous mixture?
//
// §3.2.1 lists Flux's scheduling policies (FCFS, backfilling, custom
// co-scheduling). On homogeneous single-core workloads the policy barely
// matters; on the §2-style mixture — short functions interleaved with
// multi-node MPI jobs — a blocked MPI job at the queue head starves the
// small tasks under strict FCFS. This ablation quantifies the gap.
#include <iostream>

#include "harness.hpp"
#include "workloads/heterogeneous.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run_with_depth(int backfill_depth, std::uint64_t seed) {
  core::Session session(platform::frontier_spec(), 8, seed);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8,
       .backends = {{.type = "flux", .partitions = 1, .nodes = 0,
                     .flux_backfill_depth = backfill_depth}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(600.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});

  // Executable-only mixture (flux rejects functions).
  auto classes = workloads::default_mixture();
  for (auto& cls : classes) {
    cls.modality = platform::TaskModality::kExecutable;
  }
  tmgr.submit(workloads::heterogeneous_tasks(600, classes, seed));
  session.run();

  const auto& metrics = pilot.agent().profiler().metrics();
  ExperimentResult result;
  result.makespan = metrics.makespan();
  result.core_util = metrics.core_utilization(pilot.total_cores());
  result.avg_tput = metrics.avg_throughput();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: FCFS vs backfill on a heterogeneous mixture "
               "(8 nodes, 600 tasks) ===\n";
  Table table({"policy", "makespan [s]", "core util", "avg tput [t/s]"});
  for (const auto& [label, depth] :
       {std::pair{std::string("strict FCFS (depth 1)"), 1},
        std::pair{std::string("backfill depth 8"), 8},
        std::pair{std::string("backfill depth 64"), 64}}) {
    const auto result = run_with_depth(depth, 42);
    table.add_row({label, fixed(result.makespan, 0),
                   percent(result.core_util), fixed(result.avg_tput)});
  }
  table.print();
  table.write_csv("ablation_backfill.csv");
  std::cout << "  Strict FCFS lets a blocked multi-node MPI job at the "
               "queue head idle the\n  machine; backfill keeps the short "
               "tasks flowing around it (§3.2.1).\n";
  return 0;
}
