// Extension bench: PRRTE DVM as an RP backend (§5 / the RP+PRRTE study).
//
// PRRTE delegates scheduling to RP's agent; once the DVM is up, per-task
// launch cost is minimal. This bench compares the full-stack launch
// throughput of the three executable paths at several scales and reports
// the DVM's one-time startup cost.
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run_backend(const std::string& backend, int nodes) {
  ExperimentConfig config;
  config.label = backend;
  config.nodes = nodes;
  if (backend == "flux") {
    config.pilot = {.nodes = nodes,
                    .backends = {{.type = "flux", .partitions = 1}}};
  } else {
    config.pilot = {.nodes = nodes, .backends = {{backend}}};
  }
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 0.0);
  return run_experiment(std::move(config));
}

}  // namespace

int main() {
  std::cout << "=== Extension: PRRTE DVM backend vs srun/flux (null "
               "workload, full RP stack) ===\n";
  Table table({"backend", "nodes", "window tput [t/s]", "peak tput [t/s]",
               "bootstrap [s]"});
  for (const int nodes : {4, 16, 64}) {
    for (const std::string backend : {"srun", "flux", "prrte"}) {
      const auto result = run_backend(backend, nodes);
      table.add_row({backend, std::to_string(nodes),
                     fixed(result.window_tput), fixed(result.peak_tput),
                     fixed(result.bootstrap)});
    }
  }
  table.print();
  table.write_csv("extension_prrte.csv");
  std::cout << "  The DVM pays a one-time startup (§5: 'distributed "
               "virtual machine') and then\n  launches with minimal "
               "per-task overhead, with RP's agent supplying the\n"
               "  scheduling PRRTE deliberately omits.\n";
  return 0;
}
