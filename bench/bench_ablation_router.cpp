// Ablation: task-type-aware backend selection vs a single backend.
//
// §4.3 argues that routing each task type to the backend matched to its
// execution model is what makes the hybrid configuration fast. This
// ablation runs the same mixed executable+function workload three ways:
//
//   hybrid       flux (executables) + dragon (functions), type-aware router
//   dragon-only  one centralized Dragon runtime takes everything
//   dragon-hint  hybrid pilot, but every task hinted onto dragon: the
//                executables are mis-routed onto the centralized runtime,
//                wasting the flux partitions
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run_config(const std::string& label,
                            core::PilotDescription pilot,
                            std::string hint) {
  ExperimentConfig config;
  config.label = label;
  config.nodes = 64;
  config.pilot = std::move(pilot);
  config.tasks = workloads::mixed_tasks(workloads::paper_task_count(64), 0.0);
  for (auto& task : config.tasks) task.backend_hint = hint;
  return run_experiment(std::move(config));
}

}  // namespace

int main() {
  std::cout << "=== Ablation: router policy on a mixed exec+func workload "
               "(64 nodes) ===\n";

  core::PilotDescription hybrid{
      .nodes = 64,
      .backends = {{.type = "flux", .partitions = 16, .nodes = 32},
                   {.type = "dragon", .nodes = 32}}};
  core::PilotDescription dragon_only{.nodes = 64, .backends = {{"dragon"}}};

  Table table({"configuration", "window tput [t/s]", "peak tput [t/s]",
               "makespan [s]"});
  for (const auto& [label, pilot, hint] :
       {std::tuple{std::string("hybrid type-aware"), hybrid,
                   std::string("")},
        std::tuple{std::string("dragon-only"), dragon_only,
                   std::string("")},
        std::tuple{std::string("hybrid, all hinted to dragon"), hybrid,
                   std::string("dragon")}}) {
    const auto result = run_config(label, pilot, hint);
    table.add_row({label, fixed(result.window_tput),
                   fixed(result.peak_tput), fixed(result.makespan, 1)});
  }
  table.print();
  table.write_csv("ablation_router.csv");
  std::cout << "  Type-aware routing exploits both control planes at once; "
               "a single centralized\n  backend serializes everything "
               "through one dispatcher (§4.3).\n";
  return 0;
}
