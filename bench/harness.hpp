// Shared experiment driver for the paper-reproduction benches.
//
// Each bench binary reproduces one table/figure: it builds a Session +
// Pilot for the experiment's runtime configuration, drives the workload
// through the real middleware stack, and prints the paper's rows (also
// appending CSV next to the binary for plotting).
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "workloads/synthetic.hpp"

namespace flotilla::bench {

struct ExperimentConfig {
  std::string label;      // e.g. "flux_1"
  int nodes = 4;
  core::PilotDescription pilot;
  std::vector<core::TaskDescription> tasks;
  std::uint64_t seed = 42;
};

struct ExperimentResult {
  std::string label;
  int nodes = 0;
  int partitions = 0;
  std::size_t tasks = 0;
  double avg_tput = 0.0;     // mean over nonzero 1 s bins
  double peak_tput = 0.0;    // max 1 s bin
  double window_tput = 0.0;  // total / launch window
  double core_util = 0.0;
  double gpu_util = 0.0;
  double makespan = 0.0;
  double bootstrap = 0.0;  // pilot ready time
  std::uint64_t failed = 0;
  std::uint64_t retried = 0;
  // Kept alive for series-level post-processing (Fig 8 plots).
  std::vector<std::uint64_t> launch_bins;
  std::vector<double> concurrency_bins;  // sampled tasks-running per bin
};

// Runs one experiment end to end on a fresh session. The pilot allocation
// always spans the whole modeled cluster.
inline ExperimentResult run_experiment(ExperimentConfig config) {
  core::Session session(platform::frontier_spec(), config.nodes,
                        config.seed);
  core::PilotManager pmgr(session);
  config.pilot.nodes = config.nodes;
  auto& pilot = pmgr.submit(std::move(config.pilot));

  ExperimentResult result;
  result.label = config.label;
  result.nodes = config.nodes;
  for (const auto& b : pilot.description().backends) {
    result.partitions += b.type == "flux" ? b.partitions : 1;
  }
  result.tasks = config.tasks.size();

  bool ready = false;
  sim::Time ready_at = 0.0;
  pilot.launch([&](bool ok, const std::string& error) {
    ready = ok;
    ready_at = session.now();
    if (!ok) std::cerr << "pilot failed: " << error << "\n";
  });
  session.run(600.0);
  if (!ready) return result;
  result.bootstrap = ready_at;

  core::TaskManager tmgr(session, pilot.agent());
  // Sample concurrency once per simulated minute for the Fig 8 series.
  const auto& metrics = pilot.agent().profiler().metrics();
  std::vector<double>* conc = &result.concurrency_bins;
  std::function<void()> sampler = [&session, &metrics, conc, &sampler,
                                   &tmgr] {
    conc->push_back(metrics.concurrency().value());
    if (!tmgr.idle()) session.engine().in(60.0, sampler);
  };

  tmgr.on_complete([](const core::Task&) {});
  tmgr.submit(std::move(config.tasks));
  session.engine().in(0.0, sampler);
  session.run();

  result.avg_tput = metrics.avg_throughput();
  result.peak_tput = metrics.peak_throughput();
  result.window_tput = metrics.window_throughput();
  result.core_util = metrics.core_utilization(pilot.total_cores());
  result.gpu_util = metrics.gpu_utilization(pilot.total_gpus());
  result.makespan = metrics.makespan();
  result.failed = metrics.tasks_failed();
  result.retried = metrics.tasks_retried();
  result.launch_bins = metrics.launch_series().bins();
  return result;
}

// ------------------------------------------------------------ formatting

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      os << "  ";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << (c < cells.size() ? cells[c] : "");
      }
      os << "\n";
    };
    line(headers_);
    os << "  ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c], '-') << "  ";
    }
    os << "\n";
    for (const auto& row : rows_) line(row);
  }

  void write_csv(const std::string& path) const {
    std::ofstream out(path);
    auto csv_line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) out << ',';
        out << cells[c];
      }
      out << '\n';
    };
    csv_line(headers_);
    for (const auto& row : rows_) csv_line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fixed(double value, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

inline std::string percent(double fraction, int precision = 1) {
  return fixed(100.0 * fraction, precision) + "%";
}

// Simple ASCII sparkline-style series plot for Fig 8-type output.
inline void print_series(const std::string& title,
                         const std::vector<double>& values, double bin_width,
                         std::ostream& os = std::cout, int height = 8,
                         int max_cols = 72) {
  os << "  " << title << "\n";
  if (values.empty()) {
    os << "    (no data)\n";
    return;
  }
  // Downsample to max_cols columns by averaging.
  const std::size_t stride =
      std::max<std::size_t>(1, (values.size() + max_cols - 1) /
                                   static_cast<std::size_t>(max_cols));
  std::vector<double> cols;
  for (std::size_t i = 0; i < values.size(); i += stride) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(values.size(), i + stride); ++j) {
      sum += values[j];
      ++n;
    }
    cols.push_back(sum / static_cast<double>(n));
  }
  double peak = 0;
  for (const double v : cols) peak = std::max(peak, v);
  if (peak <= 0) peak = 1;
  for (int r = height; r >= 1; --r) {
    const double threshold = peak * r / height;
    os << "    " << std::setw(9) << fixed(threshold, 0) << " |";
    for (const double v : cols) os << (v >= threshold ? '#' : ' ');
    os << "\n";
  }
  os << "    " << std::setw(9) << 0 << " +" << std::string(cols.size(), '-')
     << "\n";
  os << "              0 .. "
     << fixed(static_cast<double>(values.size()) * bin_width, 0) << " s ("
     << fixed(bin_width * static_cast<double>(stride), 0) << " s/col)\n";
}

}  // namespace flotilla::bench
