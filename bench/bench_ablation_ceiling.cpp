// Ablation: how does the site-imposed srun concurrency ceiling shape
// utilization and makespan?
//
// The paper measures Frontier's ceiling at 112 and shows it capping
// utilization at 50% on 4 nodes (Fig 4). This ablation sweeps the ceiling
// to show the cap is the *only* cause: at >= 224 slots (one per core) srun
// saturates the nodes like Flux does.
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

int main() {
  std::cout << "=== Ablation: srun concurrency ceiling sweep (4 nodes, "
               "dummy 180 s) ===\n";
  Table table({"ceiling", "core util", "max concurrency", "makespan [s]"});
  for (const std::int64_t ceiling : {28L, 56L, 112L, 224L, 448L}) {
    auto spec = platform::frontier_spec();
    spec.srun_concurrency_ceiling = ceiling;
    core::Session session(spec, 4, 42);
    core::PilotManager pmgr(session);
    auto& pilot = pmgr.submit({.nodes = 4, .backends = {{"srun"}}});
    pilot.launch([](bool ok, const std::string&) { (void)ok; });
    session.run(10.0);
    core::TaskManager tmgr(session, pilot.agent());
    tmgr.on_complete([](const core::Task&) {});
    tmgr.submit(workloads::uniform_tasks(896, 180.0));
    session.run();
    const auto& metrics = pilot.agent().profiler().metrics();
    table.add_row({std::to_string(ceiling),
                   percent(metrics.core_utilization(pilot.total_cores())),
                   fixed(metrics.peak_concurrency(), 0),
                   fixed(metrics.makespan(), 0)});
  }
  table.print();
  table.write_csv("ablation_ceiling.csv");
  std::cout << "  The 112-srun ceiling alone explains the paper's 50% "
               "utilization plateau;\n  with one slot per core (224) srun "
               "matches Flux's utilization on this workload.\n";
  return 0;
}
