// Microbenchmarks (google-benchmark) of the hot paths every experiment
// rides on: the DES engine, the queueing primitives, placement, and the
// real threaded components.
#include <benchmark/benchmark.h>

#include "dragon/function_executor.hpp"
#include "dragon/mpmc_queue.hpp"
#include "dragon/shmem_channel.hpp"
#include "platform/cluster.hpp"
#include "sched/placement_policy.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"

namespace {

using namespace flotilla;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < state.range(0); ++i) {
      engine.at(static_cast<double>(i % 97), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(engine.at(static_cast<double>(i), [] {}));
    }
    for (const auto id : ids) engine.cancel(id);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineCancel);

void BM_ServerPipeline(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Server server(engine, 4);
    for (int i = 0; i < 10000; ++i) server.submit(0.001, [] {});
    engine.run();
    benchmark::DoNotOptimize(server.completed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ServerPipeline);

void BM_ResourceAcquireRelease(benchmark::State& state) {
  sim::Engine engine;
  sim::Resource resource(engine, 64);
  for (auto _ : state) {
    resource.acquire(8, [&resource] { resource.release(8); });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceAcquireRelease);

void BM_PlacementSingleCore(benchmark::State& state) {
  platform::Cluster cluster(platform::frontier_spec(),
                            static_cast<int>(state.range(0)));
  const auto range = cluster.all_nodes();
  platform::NodeId cursor = 0;
  std::vector<platform::Placement> held;
  for (auto _ : state) {
    auto placement =
        sched::linear_try_place(cluster, range, {1, 0, 0}, &cursor);
    if (placement) {
      held.push_back(std::move(*placement));
    } else {
      for (auto& p : held) cluster.release(p);
      held.clear();
    }
  }
  for (auto& p : held) cluster.release(p);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementSingleCore)->Arg(16)->Arg(1024);

void BM_PlacementMpiChunks(benchmark::State& state) {
  platform::Cluster cluster(platform::frontier_spec(), 256);
  for (auto _ : state) {
    auto placement =
        sched::linear_try_place(cluster, cluster.all_nodes(), {7168, 0, 56});
    benchmark::DoNotOptimize(placement);
    if (placement) cluster.release(*placement);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementMpiChunks);

void BM_RngLognormal(benchmark::State& state) {
  sim::RngStream rng(42, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_mean_cv(0.035, 0.2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngLognormal);

void BM_RateSeriesRecord(benchmark::State& state) {
  sim::RateSeries series(1.0);
  double t = 0;
  for (auto _ : state) {
    series.record(t);
    t += 0.01;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateSeriesRecord);

void BM_MpmcQueueSpsc(benchmark::State& state) {
  dragon::MpmcQueue<int> queue(1024);
  for (auto _ : state) {
    queue.try_push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueueSpsc);

void BM_ShmemChannelRoundTrip(benchmark::State& state) {
  dragon::ShmemChannel<int> channel(1024);
  for (auto _ : state) {
    channel.try_send(1);
    benchmark::DoNotOptimize(channel.try_receive());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShmemChannelRoundTrip);

void BM_FunctionExecutorSubmit(benchmark::State& state) {
  dragon::FunctionExecutor executor(2);
  for (auto _ : state) {
    executor.submit([] { return 1; }).get();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionExecutorSubmit);

}  // namespace

BENCHMARK_MAIN();
