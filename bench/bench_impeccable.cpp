// Figure 8 + §4.2: the IMPECCABLE campaign (dummy-task rendition) with the
// srun and Flux backends on 256 and 1024 nodes.
//
// Paper results to match in shape:
//   makespan:  srun ~26,000 s @256n, ~44,000 s @1024n
//              flux ~22,000 s @256n, ~17,500 s @1024n
//              (30-60% reduction with flux; srun degrades with scale,
//              flux improves)
//   CPU/GPU utilization: srun 30%/20% @256n, 15%/14% @1024n
//                        flux 68%/33% @256n, 69%/43% @1024n
//   srun's start rate is erratic (launch contention + retry backoff);
//   flux launches tightly after dependencies resolve.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analytics/timeline.hpp"
#include "harness.hpp"
#include "workloads/impeccable.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

struct CampaignResult {
  ExperimentResult exp;
  int total_tasks = 0;
};

CampaignResult run_campaign(const std::string& backend, int nodes) {
  core::Session session(platform::frontier_spec(), nodes, 42);
  core::PilotManager pmgr(session);
  core::PilotDescription pdesc;
  pdesc.nodes = nodes;
  if (backend == "flux") {
    pdesc.backends = {{.type = "flux", .partitions = 1}};
  } else {
    pdesc.backends = {{backend}};
  }
  auto& pilot = pmgr.submit(std::move(pdesc));
  bool ready = false;
  pilot.launch([&](bool ok, const std::string&) { ready = ok; });
  session.run(600.0);

  CampaignResult result;
  result.exp.label = backend;
  result.exp.nodes = nodes;
  if (!ready) return result;

  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);
  const auto plan = workloads::impeccable_plan(nodes);
  workloads::build_impeccable(workflow, plan);
  result.total_tasks = plan.total_tasks();

  const auto& metrics = pilot.agent().profiler().metrics();
  bool done = false;
  workflow.on_drained([&done] { done = true; });
  analytics::Timeline timeline(session.engine(), metrics, 60.0);
  timeline.start([&done] { return !done; });
  workflow.start();
  session.run();
  result.exp.concurrency_bins = timeline.running_series();
  // Per-step (4-hour window; the campaign is shorter than the paper's
  // 12-hour allocations) utilization summary, Fig 8 commentary-style.
  const auto steps = analytics::step_report(timeline, 4.0 * 3600.0);
  std::cout << "  step report (4 h windows): ";
  for (const auto& step : steps) {
    std::cout << "[" << step.step << "] "
              << fixed(step.mean_cores_busy / (nodes * 56.0) * 100.0, 0)
              << "%cpu ";
  }
  std::cout << "\n";

  result.exp.tasks = static_cast<std::size_t>(result.total_tasks);
  result.exp.makespan = metrics.makespan();
  result.exp.core_util =
      metrics.core_utilization(pilot.total_cores());
  result.exp.gpu_util = metrics.gpu_utilization(pilot.total_gpus());
  result.exp.avg_tput = metrics.avg_throughput();
  result.exp.peak_tput = metrics.peak_throughput();
  result.exp.failed = metrics.tasks_failed();
  result.exp.retried = metrics.tasks_retried();
  result.exp.launch_bins = metrics.launch_series().bins();
  return result;
}

std::vector<double> rate_per_minute(const std::vector<std::uint64_t>& bins) {
  std::vector<double> out;
  for (std::size_t i = 0; i < bins.size(); i += 60) {
    double sum = 0;
    for (std::size_t j = i; j < std::min(bins.size(), i + 60); ++j) {
      sum += static_cast<double>(bins[j]);
    }
    out.push_back(sum / 60.0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0) only = argv[i + 1];
  }
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;

  std::cout << "=== Fig 8 / §4.2: IMPECCABLE campaign, srun vs flux ===\n";

  struct PaperRow {
    const char* backend;
    int nodes;
    const char* makespan;
    const char* cpu;
    const char* gpu;
  };
  const std::vector<PaperRow> paper{
      {"srun", 256, "~26,000", "30%", "20%"},
      {"srun", 1024, "~44,000", "15%", "14%"},
      {"flux", 256, "~22,000", "68%", "33%"},
      {"flux", 1024, "~17,500", "69%", "43%"},
  };

  Table table({"backend", "nodes", "tasks", "makespan [s]", "CPU util",
               "GPU util", "retries", "paper makespan", "paper CPU/GPU"});
  for (const auto& row : paper) {
    if (!only.empty() && only != row.backend) continue;
    if (quick && row.nodes == 1024) continue;
    const auto result = run_campaign(row.backend, row.nodes);
    table.add_row({row.backend, std::to_string(row.nodes),
                   std::to_string(result.total_tasks),
                   fixed(result.exp.makespan, 0),
                   percent(result.exp.core_util),
                   percent(result.exp.gpu_util),
                   std::to_string(result.exp.retried), row.makespan,
                   std::string(row.cpu) + "/" + row.gpu});
    std::cout << "\n[" << row.backend << " @ " << row.nodes << " nodes]\n";
    print_series("tasks running (Fig 8 green series)",
                 result.exp.concurrency_bins, 60.0);
    print_series("execution start rate [tasks/s] (Fig 8 red series)",
                 rate_per_minute(result.exp.launch_bins), 60.0);
  }
  std::cout << "\n";
  table.print();
  table.write_csv("fig8_impeccable.csv");
  return 0;
}
