// Figure 5 (a,b,c): average task throughput per backend vs node count.
//
// Null workloads (empty tasks) of n_nodes * 56 * 4 single-core tasks,
// launched through the full RP stack with a single backend instance.
//
// Paper results to match in shape:
//   (a) srun:   152 tasks/s @1 node, 61 @4, declining with allocation size
//   (b) flux:   ~28 tasks/s @1 node, rising with node count (peak 744)
//   (c) dragon: 343/380/204 tasks/s @4/16/64 nodes (max 622)
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "harness.hpp"
#include "sim/stats.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run_one(const std::string& backend, int nodes,
                         std::uint64_t seed) {
  ExperimentConfig config;
  config.label = backend;
  config.nodes = nodes;
  config.seed = seed;
  if (backend == "flux") {
    config.pilot = {.nodes = nodes,
                    .backends = {{.type = "flux", .partitions = 1}}};
  } else {
    config.pilot = {.nodes = nodes, .backends = {{backend}}};
  }
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 0.0);
  return run_experiment(std::move(config));
}

// The paper reports "substantial throughput variability across
// repetitions" (§4.1.2); each scale runs `repetitions` seeds and reports
// mean +/- sd alongside the paper's average.
void run_backend(const std::string& backend, const std::vector<int>& scales,
                 const std::vector<std::string>& paper_avg,
                 int repetitions) {
  std::cout << "\n--- Fig 5: backend = " << backend << " (" << repetitions
            << " seeds/scale) ---\n";
  Table table({"nodes", "tasks", "window tput [t/s]", "sd", "peak tput",
               "paper avg [t/s]"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    sim::Tally window, peak;
    std::size_t tasks = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto result =
          run_one(backend, scales[i], 42 + 1000 * rep);
      window.add(result.window_tput);
      peak.add(result.peak_tput);
      tasks = result.tasks;
    }
    table.add_row({std::to_string(scales[i]), std::to_string(tasks),
                   fixed(window.mean()), fixed(window.stddev()),
                   fixed(peak.max()),
                   i < paper_avg.size() ? paper_avg[i] : "-"});
  }
  table.print();
  table.write_csv("fig5_throughput_" + backend + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  // --backend <name> restricts to one sub-figure; default runs all three.
  std::string only;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0) only = argv[i + 1];
  }
  // FLOTILLA_BENCH_QUICK=1 trims the largest scales for smoke runs.
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;

  std::cout << "=== Fig 5: task throughput vs nodes (null workload) ===\n";

  const int reps = quick ? 1 : 3;
  if (only.empty() || only == "srun") {
    run_backend("srun", {1, 2, 4, 16}, {"152", "~100", "61", "~20"}, reps);
  }
  if (only.empty() || only == "flux") {
    std::vector<int> scales{1, 4, 16, 64, 256};
    if (!quick) scales.push_back(1024);
    run_backend("flux", scales,
                {"28", "56", "~100", "~200", "287", "~300 (peak 744)"},
                reps);
  }
  if (only.empty() || only == "dragon") {
    run_backend("dragon", {1, 4, 16, 64}, {"~340", "343", "380", "204"},
                reps);
  }
  return 0;
}
