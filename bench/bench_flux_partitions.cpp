// Figure 6 / Experiment flux_n: Flux throughput with 1..64 concurrent
// instances on fixed node counts, plus the utilization claims of §4.1.3.
//
// Paper results to match in shape:
//   4 nodes:    56 -> 98 tasks/s going from 1 to 4 instances
//   16 nodes:   43 -> 195 tasks/s going from 1 to 16 instances
//   256 nodes:  286.7 -> 302.5 tasks/s from 1 to 64 instances
//   1024 nodes: 160.6 -> 232.9 tasks/s from 1 to 16 instances
//   max observed throughput ~930 tasks/s (RP's flux-executor ceiling)
//   utilization >= 94.5% up to 64 nodes; 75.4% at 1024 nodes/16 instances
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run_null(int nodes, int partitions) {
  ExperimentConfig config;
  config.label = "flux_n";
  config.nodes = nodes;
  config.pilot = {.nodes = nodes,
                  .backends = {{.type = "flux", .partitions = partitions}}};
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 0.0);
  return run_experiment(std::move(config));
}

ExperimentResult run_dummy(int nodes, int partitions) {
  ExperimentConfig config;
  config.label = "flux_n_dummy";
  config.nodes = nodes;
  config.pilot = {.nodes = nodes,
                  .backends = {{.type = "flux", .partitions = partitions}}};
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 180.0);
  return run_experiment(std::move(config));
}

}  // namespace

int main() {
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;
  std::cout << "=== Fig 6: flux throughput vs #instances (null workload) "
               "===\n";

  struct Grid {
    int nodes;
    std::vector<int> partitions;
  };
  std::vector<Grid> grid{{4, {1, 4}}, {16, {1, 4, 16}}, {64, {1, 16, 64}}};
  if (!quick) {
    grid.push_back({256, {1, 64}});
    grid.push_back({1024, {1, 16}});
  }

  double max_tput = 0.0;
  Table table({"nodes", "instances", "avg tput [t/s]", "peak tput [t/s]",
               "window tput [t/s]"});
  for (const auto& g : grid) {
    for (const int parts : g.partitions) {
      const auto result = run_null(g.nodes, parts);
      max_tput = std::max(max_tput, result.peak_tput);
      table.add_row({std::to_string(g.nodes), std::to_string(parts),
                     fixed(result.avg_tput), fixed(result.peak_tput),
                     fixed(result.window_tput)});
    }
  }
  table.print();
  table.write_csv("fig6_flux_partitions.csv");
  std::cout << "  max observed throughput: " << fixed(max_tput)
            << " tasks/s (paper: up to 930, bounded by RP's flux-executor "
               "serialization)\n";

  std::cout << "\n--- flux_n utilization (dummy 180 s workload) ---\n";
  Table util({"nodes", "instances", "core util", "paper"});
  struct UtilPoint {
    int nodes, parts;
    const char* paper;
  };
  std::vector<UtilPoint> points{{16, 4, ">= 94.5%"}, {64, 16, ">= 94.5%"}};
  if (!quick) points.push_back({1024, 16, "75.4%"});
  for (const auto& p : points) {
    const auto result = run_dummy(p.nodes, p.parts);
    util.add_row({std::to_string(p.nodes), std::to_string(p.parts),
                  percent(result.core_util), p.paper});
  }
  util.print();
  util.write_csv("fig6_flux_utilization.csv");
  return 0;
}
