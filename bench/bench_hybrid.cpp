// Figure 5(d) / Experiment flux+dragon: hybrid execution of executables
// (Flux) and function tasks (Dragon) in one pilot, with equal partitions.
//
// Paper results to match in shape:
//   throughput grows with nodes/instances; 171 t/s avg and 573 t/s max at
//   16 nodes (8+8 instances); max 1,547 tasks/s at 64 nodes — the ceiling
//   of RP's task-management subsystem;
//   resource utilization >= 99.6% (dummy workload), some runs 100%.
#include <cstdlib>
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

core::PilotDescription hybrid_pilot(int nodes) {
  // Equal split: flux on one half (one instance per 2 nodes, like the
  // paper's multi-partition setup), dragon on the other half.
  const int flux_nodes = std::max(1, nodes / 2);
  const int dragon_nodes = std::max(1, nodes - flux_nodes);
  const int flux_parts = std::max(1, flux_nodes / 2);
  return {.nodes = nodes,
          .backends = {
              {.type = "flux", .partitions = flux_parts, .nodes = flux_nodes},
              {.type = "dragon", .nodes = dragon_nodes},
          }};
}

ExperimentResult run_mixed(int nodes, double duration) {
  ExperimentConfig config;
  config.label = "flux+dragon";
  config.nodes = nodes;
  config.pilot = hybrid_pilot(nodes);
  config.tasks =
      workloads::mixed_tasks(workloads::paper_task_count(nodes), duration);
  return run_experiment(std::move(config));
}

}  // namespace

int main() {
  std::cout << "=== Fig 5(d): flux+dragon hybrid throughput (mixed "
               "exec+func null workload) ===\n";
  double max_tput = 0.0;
  Table table({"nodes", "tasks", "avg tput [t/s]", "peak tput [t/s]",
               "window tput [t/s]"});
  for (const int nodes : {2, 4, 16, 64}) {
    const auto result = run_mixed(nodes, 0.0);
    max_tput = std::max(max_tput, result.peak_tput);
    table.add_row({std::to_string(nodes), std::to_string(result.tasks),
                   fixed(result.avg_tput), fixed(result.peak_tput),
                   fixed(result.window_tput)});
  }
  table.print();
  table.write_csv("fig5d_hybrid_throughput.csv");
  std::cout << "  max observed throughput: " << fixed(max_tput)
            << " tasks/s (paper: 1,547 at 64 nodes; RP task-management "
               "ceiling)\n";

  std::cout << "\n--- flux+dragon utilization (dummy 360 s workload) ---\n";
  Table util({"nodes", "core util", "paper"});
  for (const int nodes : {4, 16, 64}) {
    const auto result = run_mixed(nodes, 360.0);
    util.add_row(
        {std::to_string(nodes), percent(result.core_util), ">= 99.6%"});
  }
  util.print();
  util.write_csv("fig5d_hybrid_utilization.csv");
  return 0;
}
