// Extension bench: partitioned Dragon (the paper's declared future work,
// §4.1.4: "Future work will investigate partitioned configurations using
// Dragon to enable concurrency and resilience similar to our approach with
// Flux").
//
// The centralized single-runtime configuration bends down at 64 nodes
// (Fig 5c: 204 tasks/s). Partitioning gives each runtime its own
// dispatcher and shrinks its infrastructure load, so throughput scales
// again — quantifying how much the future work is worth.
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult run(int nodes, int partitions) {
  ExperimentConfig config;
  config.label = "dragon_n";
  config.nodes = nodes;
  config.pilot = {.nodes = nodes,
                  .backends = {{.type = "dragon", .partitions = partitions}}};
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 0.0);
  return run_experiment(std::move(config));
}

}  // namespace

int main() {
  std::cout << "=== Extension: partitioned Dragon (paper future work, "
               "exec tasks, null workload) ===\n";
  Table table({"nodes", "partitions", "window tput [t/s]",
               "peak tput [t/s]"});
  for (const int nodes : {16, 64}) {
    for (const int parts : {1, 4, 16}) {
      if (parts > nodes) continue;
      const auto result = run(nodes, parts);
      table.add_row({std::to_string(nodes), std::to_string(parts),
                     fixed(result.window_tput), fixed(result.peak_tput)});
    }
  }
  table.print();
  table.write_csv("ablation_dragon_partitions.csv");
  std::cout << "  Partitioning removes the centralized-dispatcher ceiling "
               "that caps a single\n  Dragon runtime at ~200 tasks/s on 64 "
               "nodes (Fig 5c).\n";
  return 0;
}
