// Figure 7: instance launching overheads.
//
// Bootstrap time per Flux / Dragon instance for instance sizes of 1-64
// nodes, and the non-additivity of concurrent instance launches.
//
// Paper results: ~20 s per Flux instance, ~9 s per Dragon instance,
// roughly independent of instance size; launching many instances
// concurrently costs about as much as launching one.
#include <iostream>
#include <memory>

#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "harness.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

// Bootstrap one backend over `nodes` nodes with `instances` partitions and
// report (wall bootstrap time, mean per-instance duration).
struct BootResult {
  double wall = 0.0;
  double per_instance = 0.0;
};

// Per-instance overhead comes out of the trace (obs::OverheadReport), not
// the backend's own accounting: the CSV is derived from the same bootstrap
// spans a --trace timeline shows, so figure and trace cannot disagree.
BootResult boot_flux(int nodes, int instances) {
  sim::Engine engine;
  platform::Cluster cluster(platform::frontier_spec(), nodes);
  obs::Tracer tracer(engine);
  flux::FluxBackend backend(engine, cluster, {0, nodes}, instances,
                            platform::frontier_calibration().flux, 42);
  backend.set_trace(obs::TraceHandle(&tracer));
  backend.bootstrap([](bool, const std::string&) {});
  engine.run();
  const auto report = obs::OverheadReport::from_trace(tracer);
  return {engine.now(), report.backend_launch_overhead("flux")};
}

BootResult boot_dragon(int nodes) {
  sim::Engine engine;
  platform::Cluster cluster(platform::frontier_spec(), nodes);
  obs::Tracer tracer(engine);
  dragon::DragonBackend backend(engine, cluster, {0, nodes},
                                platform::frontier_calibration().dragon, 42);
  backend.set_trace(obs::TraceHandle(&tracer));
  backend.bootstrap([](bool, const std::string&) {});
  engine.run();
  const auto report = obs::OverheadReport::from_trace(tracer);
  return {engine.now(), report.backend_launch_overhead("dragon")};
}

}  // namespace

int main() {
  std::cout << "=== Fig 7: instance launching overheads ===\n";

  Table table({"runtime", "nodes/instance", "bootstrap [s]", "paper"});
  for (const int nodes : {1, 4, 16, 64}) {
    table.add_row({"flux", std::to_string(nodes),
                   fixed(boot_flux(nodes, 1).per_instance), "~20 s"});
  }
  for (const int nodes : {1, 4, 16, 64}) {
    table.add_row({"dragon", std::to_string(nodes),
                   fixed(boot_dragon(nodes).per_instance), "~9 s"});
  }
  table.print();
  table.write_csv("fig7_overheads.csv");

  std::cout << "\n--- concurrent launches are not additive ---\n";
  Table conc({"instances (flux, 64 nodes)", "total wall [s]",
              "sum of per-instance [s]"});
  for (const int instances : {1, 4, 16, 64}) {
    const auto result = boot_flux(64, instances);
    conc.add_row({std::to_string(instances), fixed(result.wall),
                  fixed(result.per_instance * instances)});
  }
  conc.print();
  conc.write_csv("fig7_overheads_concurrent.csv");
  std::cout << "  Launching 64 instances costs about as much wall time as "
               "launching 1\n  (instances bootstrap concurrently, §4.1.5).\n";
  return 0;
}
