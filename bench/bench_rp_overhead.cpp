// §4's third metric, "runtime overhead", in two parts:
//  (1) infrastructure setup time before workflow execution begins
//      (per-backend pilot bootstrap; complements Fig 7's per-instance
//      numbers), and
//  (2) per-task middleware overhead — the time a task spends in RP's own
//      pipeline (intake, scheduling, executor submission, collection)
//      versus executing its payload, broken down per phase by the
//      session report.
#include <iostream>

#include "analytics/session_report.hpp"
#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

struct OverheadResult {
  double bootstrap = 0.0;
  double mean_overhead = 0.0;
  double overhead_fraction = 0.0;
  analytics::SessionReport report;
};

OverheadResult run_backend(const std::string& backend) {
  core::Session session(platform::frontier_spec(), 8, 42);
  core::PilotManager pmgr(session);
  core::PilotDescription desc;
  desc.nodes = 8;
  if (backend == "flux") {
    desc.backends = {{.type = "flux", .partitions = 2}};
  } else {
    desc.backends = {{backend}};
  }
  auto& pilot = pmgr.submit(std::move(desc));
  OverheadResult result;
  pilot.launch([&](bool, const std::string&) {
    result.bootstrap = session.now();
  });
  session.run(600.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  // Moderate load: 2 waves of 60 s single-core tasks.
  tmgr.submit(workloads::uniform_tasks(8 * 56 * 2, 60.0));
  session.run();
  tmgr.for_each_task(
      [&](const core::Task& task) { result.report.add(task); });
  result.mean_overhead = result.report.mean_overhead();
  result.overhead_fraction = result.report.overhead_fraction();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Runtime overhead per backend (setup + per-task "
               "middleware share) ===\n";
  Table table({"backend", "pilot setup [s]", "mean per-task overhead [s]",
               "overhead share"});
  for (const std::string backend : {"srun", "flux", "dragon", "prrte"}) {
    const auto result = run_backend(backend);
    table.add_row({backend, fixed(result.bootstrap),
                   fixed(result.mean_overhead, 3),
                   percent(result.overhead_fraction)});
    if (backend == "flux") {
      std::cout << "\n[flux] per-phase breakdown:\n";
      result.report.print(std::cout);
      std::cout << "\n";
    }
  }
  table.print();
  table.write_csv("rp_overhead.csv");
  std::cout
      << "  Setup is dominated by backend bootstrap (Fig 7). The per-task\n"
         "  overhead is almost entirely *launch-rate queueing* (the second\n"
         "  task wave waits for the first to finish and for the launcher to\n"
         "  cycle); RP's own pipeline costs are the sub-second intake and\n"
         "  scheduling rows. srun's share is inflated by the concurrency\n"
         "  ceiling — the same mechanism behind Fig 4's 50% plateau.\n";
  return 0;
}
