// Ablation: cost of fault tolerance.
//
// §3.2 claims failures are isolated per Flux instance and recovered via
// RP-level retries. This ablation quantifies it: a 2-instance Flux pilot
// runs an ensemble; halfway through, one broker crashes. We compare
// no-crash, crash-with-retries, and crash-without-retries.
#include <iostream>

#include "flux/flux_backend.hpp"
#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

struct FaultResult {
  double makespan = 0.0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t retried = 0;
};

FaultResult run_case(bool crash, int max_retries) {
  core::Session session(platform::frontier_spec(), 8, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8, .backends = {{.type = "flux", .partitions = 2}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(120.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  auto tasks = workloads::uniform_tasks(448, 600.0);
  for (auto& task : tasks) task.max_retries = max_retries;
  tmgr.submit(std::move(tasks));
  if (crash) {
    session.run(session.now() + 300.0);
    dynamic_cast<flux::FluxBackend*>(pilot.agent().backend("flux"))
        ->crash_instance(0, "injected broker crash");
  }
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  return {metrics.makespan(), metrics.tasks_done(), metrics.tasks_failed(),
          metrics.tasks_retried()};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: flux instance crash, with and without "
               "RP retries ===\n";
  Table table({"scenario", "done", "failed", "retried", "makespan [s]"});
  const auto baseline = run_case(false, 3);
  const auto with_retry = run_case(true, 3);
  const auto no_retry = run_case(true, 0);
  table.add_row({"no crash", std::to_string(baseline.done),
                 std::to_string(baseline.failed),
                 std::to_string(baseline.retried),
                 fixed(baseline.makespan, 0)});
  table.add_row({"crash @300s, retries=3", std::to_string(with_retry.done),
                 std::to_string(with_retry.failed),
                 std::to_string(with_retry.retried),
                 fixed(with_retry.makespan, 0)});
  table.add_row({"crash @300s, retries=0", std::to_string(no_retry.done),
                 std::to_string(no_retry.failed),
                 std::to_string(no_retry.retried),
                 fixed(no_retry.makespan, 0)});
  table.print();
  table.write_csv("ablation_faults.csv");
  std::cout << "  Retries turn a lost broker into makespan overhead instead "
               "of lost tasks;\n  failures stay isolated to the crashed "
               "instance (§4.1.3).\n";
  return 0;
}
