// Figure 4: srun resource utilization.
//
// 896 single-core dummy(180 s) tasks on 4 Frontier nodes (224 cores at
// SMT=1), launched one srun per task. Frontier's ceiling of 112 concurrent
// srun invocations caps concurrency at half the cores, so utilization
// plateaus at 50%.
//
// Paper result: max concurrency 112; resource utilization limited to 50%.
#include <iostream>

#include "harness.hpp"

using namespace flotilla;
using namespace flotilla::bench;

int main() {
  std::cout << "=== Fig 4: srun utilization, 896 x dummy(180s), 4 nodes ===\n";

  ExperimentConfig config;
  config.label = "srun";
  config.nodes = 4;
  config.pilot = {.nodes = 4, .backends = {{"srun"}}};
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(4), 180.0);
  auto result = run_experiment(std::move(config));

  double peak_conc = 0;
  for (const double c : result.concurrency_bins) {
    peak_conc = std::max(peak_conc, c);
  }

  print_series("tasks running over time (paper: plateau at 112)",
               result.concurrency_bins, 60.0);

  Table table({"metric", "measured", "paper"});
  table.add_row({"tasks", std::to_string(result.tasks), "896"});
  table.add_row({"max concurrency", fixed(peak_conc, 0), "112"});
  table.add_row({"core utilization", percent(result.core_util), "50%"});
  table.add_row({"makespan [s]", fixed(result.makespan, 0), "~1450"});
  table.print();
  table.write_csv("fig4_srun_utilization.csv");

  std::cout << "\nFrontier's srun concurrency ceiling ("
            << platform::frontier_spec().srun_concurrency_ceiling
            << ") limits utilization to ~50% of 224 cores.\n";
  return 0;
}
