// Table 1 of the paper, encoded as data: the experiment matrix every bench
// binary draws its configurations from.
#pragma once

#include <string>
#include <vector>

namespace flotilla::bench {

struct ExperimentRow {
  std::string id;         // Exp ID (Table 1)
  std::string workload;   // null / dummy(Ns) / impeccable
  std::string launcher;   // srun / flux / dragon / flux & dragon
  std::vector<int> nodes; // #nodes/pilot
  std::vector<int> partitions;
  std::string task_types;  // exec / func / exec & funcs
  std::string n_tasks;     // formula or approximate count
  std::string cores_per_task;
};

inline const std::vector<ExperimentRow>& table1() {
  static const std::vector<ExperimentRow> rows = {
      {"srun", "null, dummy(180s)", "srun", {4}, {1}, "exec",
       "n_nodes * cpn * 4", "1"},
      {"flux_1", "null, dummy(360s)", "flux",
       {1, 4, 16, 64, 256, 1024}, {1}, "exec", "n_nodes * cpn * 4", "1"},
      {"flux_n", "null, dummy(180s)", "flux", {64, 1024},
       {1, 4, 16, 64}, "exec", "n_nodes * cpn * 4", "1"},
      {"dragon", "null, dummy(180s)", "dragon", {1, 4, 16, 64}, {1},
       "exec", "n_nodes * cpn * 4", "1"},
      {"flux+dragon", "null, dummy(360s)", "flux & dragon",
       {1, 4, 16, 64}, {1}, "exec & funcs", "n_nodes * cpn * 4", "1"},
      {"impeccable_srun", "impeccable", "srun", {256, 1024}, {1}, "exec",
       "~550, ~1800", "1-7168"},
      {"impeccable_flux", "impeccable", "flux", {256, 1024}, {1}, "exec",
       "~550, ~1800", "1-7168"},
  };
  return rows;
}

}  // namespace flotilla::bench
