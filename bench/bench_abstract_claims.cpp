// The paper's abstract, verified end to end in one binary.
//
//   "RP+Flux sustains up to 930 tasks/s, and RP+Flux+Dragon exceeds 1,500
//    tasks/s with over 99.6% utilization. In contrast, srun peaks at 152
//    tasks/s and degrades with scale, with utilization below 50%. For
//    IMPECCABLE.v2 ... RP+Flux reduces makespan by 30-60% relative to
//    srun/Slurm and increases throughput more than four times on up to
//    1,024 [nodes]."
//
// Runs the minimal set of experiments behind each claim and prints a
// verdict per claim. FLOTILLA_BENCH_QUICK=1 downsizes the IMPECCABLE runs.
#include <cstdlib>
#include <iostream>

#include "harness.hpp"
#include "workloads/impeccable.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

ExperimentResult null_run(const std::string& backend, int nodes,
                          int partitions) {
  ExperimentConfig config;
  config.label = backend;
  config.nodes = nodes;
  if (backend == "flux") {
    config.pilot = {.nodes = nodes,
                    .backends = {{.type = "flux", .partitions = partitions}}};
  } else if (backend == "hybrid") {
    config.pilot = {
        .nodes = nodes,
        .backends = {
            {.type = "flux", .partitions = partitions, .nodes = nodes / 2},
            {.type = "dragon", .nodes = nodes - nodes / 2}}};
    config.tasks =
        workloads::mixed_tasks(workloads::paper_task_count(nodes), 0.0);
    return run_experiment(std::move(config));
  } else {
    config.pilot = {.nodes = nodes, .backends = {{backend}}};
  }
  config.tasks =
      workloads::uniform_tasks(workloads::paper_task_count(nodes), 0.0);
  return run_experiment(std::move(config));
}

struct Campaign {
  double makespan = 0.0;
  double peak_start_rate = 0.0;
};

Campaign impeccable_run(const std::string& backend, int nodes) {
  core::Session session(platform::frontier_spec(), nodes, 42);
  core::PilotManager pmgr(session);
  core::PilotDescription desc;
  desc.nodes = nodes;
  desc.backends = backend == "flux"
                      ? std::vector<core::BackendSpec>{{"flux", 1}}
                      : std::vector<core::BackendSpec>{{backend}};
  auto& pilot = pmgr.submit(std::move(desc));
  pilot.launch([](bool, const std::string&) {});
  session.run(600.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  core::Workflow workflow(tmgr);
  workloads::build_impeccable(workflow, workloads::impeccable_plan(nodes));
  workflow.start();
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  return {metrics.makespan(), metrics.peak_throughput()};
}

const char* verdict(bool ok) { return ok ? "REPRODUCED" : "DEVIATES"; }

}  // namespace

int main() {
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;
  std::cout << "=== Abstract claims, verified ===\n";
  Table table({"claim", "paper", "measured", "verdict"});

  // srun: peaks at 152 tasks/s on one node and degrades with scale,
  // utilization below 50%.
  const auto srun1 = null_run("srun", 1, 1);
  const auto srun4 = null_run("srun", 4, 1);
  table.add_row({"srun peak throughput (1 node)", "152 t/s",
                 fixed(srun1.peak_tput) + " t/s",
                 verdict(std::abs(srun1.peak_tput - 152) < 25)});
  table.add_row({"srun degrades with scale", "61 t/s @4n",
                 fixed(srun4.window_tput) + " t/s",
                 verdict(srun4.window_tput < 0.5 * srun1.peak_tput)});
  {
    ExperimentConfig config;
    config.label = "srun_util";
    config.nodes = 4;
    config.pilot = {.nodes = 4, .backends = {{"srun"}}};
    config.tasks = workloads::uniform_tasks(896, 180.0);
    const auto util = run_experiment(std::move(config));
    table.add_row({"srun utilization below 50%", "<= 50%",
                   percent(util.core_util),
                   verdict(util.core_util <= 0.505)});
  }

  // flux_n: up to 930 tasks/s.
  const auto fluxn = null_run("flux", 64, 64);
  table.add_row({"RP+Flux sustains up to ~930 t/s", "930 t/s",
                 fixed(fluxn.peak_tput) + " t/s peak",
                 verdict(fluxn.peak_tput > 800 && fluxn.peak_tput < 1100)});

  // hybrid: >1,500 tasks/s at >= 99.6% utilization.
  const auto hybrid = null_run("hybrid", 64, 16);
  table.add_row({"RP+Flux+Dragon exceeds ~1,500 t/s", "1,547 t/s",
                 fixed(hybrid.peak_tput) + " t/s peak",
                 verdict(hybrid.peak_tput > 1300)});
  {
    ExperimentConfig config;
    config.label = "hybrid_util";
    config.nodes = 16;
    config.pilot = {
        .nodes = 16,
        .backends = {{.type = "flux", .partitions = 4, .nodes = 8},
                     {.type = "dragon", .nodes = 8}}};
    config.tasks = workloads::mixed_tasks(workloads::paper_task_count(16),
                                          360.0);
    const auto util = run_experiment(std::move(config));
    table.add_row({"hybrid utilization over 99.6%", ">= 99.6%",
                   percent(util.core_util),
                   verdict(util.core_util >= 0.996)});
  }

  // IMPECCABLE: flux reduces makespan 30-60% vs srun; throughput >4x.
  const int nodes = quick ? 256 : 1024;
  const auto camp_srun = impeccable_run("srun", nodes);
  const auto camp_flux = impeccable_run("flux", nodes);
  const double reduction = 1.0 - camp_flux.makespan / camp_srun.makespan;
  table.add_row(
      {"IMPECCABLE makespan reduction @" + std::to_string(nodes) + "n",
       "30-60%", percent(reduction),
       verdict(reduction > 0.25 && reduction < 0.70)});
  const double tput_gain =
      camp_flux.peak_start_rate / std::max(1.0, camp_srun.peak_start_rate);
  table.add_row({"IMPECCABLE start-rate gain", "> 4x",
                 fixed(tput_gain, 1) + "x",
                 verdict(tput_gain > 3.0)});

  table.print();
  table.write_csv("abstract_claims.csv");
  return 0;
}
