// Scheduling-subsystem bench: the placement-bound control-plane hot path.
//
// Part 1 isolates placement at the paper's Frontier scale (9,408 nodes):
// a steady-state churn on a nearly full machine, where every placement
// must find the one freed node. The legacy linear scan walks O(nodes) per
// attempt; the FreeResourceIndex answers in O(log n). The speedup printed
// here is the headline number for the indexed placer.
//
// Part 2 runs a small end-to-end campaign (full RP + flux stack) so the
// snapshot records makespan and simulator events/sec alongside the
// placement rates — the regression surface scripts/bench_snapshot.sh
// captures into BENCH_sched.json.
//
// Machine-readable output: lines starting with "KV " hold key=value pairs.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "harness.hpp"
#include "sched/placer.hpp"
#include "sim/random.hpp"
#include "sim/storm.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ChurnResult {
  std::uint64_t attempts = 0;
  double seconds = 0.0;
  double attempts_per_sec() const {
    return seconds > 0 ? static_cast<double>(attempts) / seconds : 0.0;
  }
};

// Fills `nodes` whole nodes, then repeatedly frees one random placement
// and re-places it: the near-full steady state every busy scheduler sits
// in, where first-fit degenerates to "find the single free node".
ChurnResult run_churn(bool use_index, int nodes, int iterations,
                      std::uint64_t seed) {
  platform::Cluster cluster(platform::frontier_spec(), nodes);
  sched::Placer placer(cluster, cluster.all_nodes(),
                       {.use_index = use_index});
  const platform::ResourceDemand whole_node{56, 0, 0};
  std::vector<platform::Placement> held;
  held.reserve(static_cast<std::size_t>(nodes));
  while (auto placement = placer.place(whole_node)) {
    held.push_back(std::move(*placement));
  }
  sim::RngStream rng(seed, "bench_sched");
  const auto fill_attempts = placer.stats().attempts;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(held.size()) - 1));
    placer.release(held[victim]);
    auto placement = placer.place(whole_node);
    if (!placement) std::abort();  // churn must always re-fit
    held[victim] = std::move(*placement);
  }
  ChurnResult result;
  result.seconds = seconds_since(start);
  result.attempts = placer.stats().attempts - fill_attempts;
  return result;
}

struct CampaignResult {
  double makespan = 0.0;
  double events_per_sec = 0.0;
  double avg_tput = 0.0;
};

// End-to-end: null workload through RP + one flux partition, timed on the
// wall clock so simulator events/sec reflects the refactored hot path.
// engine_shards/engine_threads > 1 measures the same campaign on the
// partitioned calendar with a concurrent drain — the configuration the
// confinement proofs (docs/correctness.md#confinement-proofs) unlock.
CampaignResult run_campaign(int nodes, int tasks, std::uint64_t seed,
                            int engine_shards = 1, int engine_threads = 1) {
  core::Session session(platform::frontier_spec(), nodes, seed,
                        platform::frontier_calibration(), engine_shards,
                        engine_threads);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = nodes, .backends = {{.type = "flux", .partitions = 1}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(600.0);
  core::TaskManager tmgr(session, pilot.agent());
  tmgr.on_complete([](const core::Task&) {});
  const auto start = std::chrono::steady_clock::now();
  tmgr.submit(workloads::uniform_tasks(tasks, 0.0));
  session.run();
  const double wall = seconds_since(start);
  const auto& metrics = pilot.agent().profiler().metrics();
  CampaignResult result;
  result.makespan = metrics.makespan();
  result.avg_tput = metrics.avg_throughput();
  result.events_per_sec =
      wall > 0 ? static_cast<double>(session.engine().processed()) / wall
               : 0.0;
  return result;
}

void kv(const std::string& key, double value) {
  std::cout << "KV " << key << "=" << fixed(value, 2) << "\n";
}

struct StormRate {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

// Pure engine throughput on the shard-confined storm workload
// (src/sim/storm.hpp): the partitioned-calendar headline number. Thread
// and shard counts are fixed — the determinism lint bans
// hardware_concurrency, and a fixed topology keeps snapshots comparable
// across runners.
StormRate run_storm_rate(int shards, int threads, int actors, int steps) {
  sim::StormConfig config;
  config.actors = actors;
  config.steps = steps;
  config.shards = shards;
  config.threads = threads;
  // Cross-shard sends are delayed >= the lookahead window, so a wide
  // window is safe; ~20 local events per actor per round amortizes the
  // round barrier (docs/sharding.md).
  config.min_send_delay = 20 * config.mean_period;
  config.lookahead = config.min_send_delay;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sim::run_storm(config);
  const double wall = seconds_since(start);
  StormRate rate;
  rate.events = result.events;
  rate.events_per_sec =
      wall > 0 ? static_cast<double>(result.events) / wall : 0.0;
  return rate;
}

}  // namespace

int main() {
  // FLOTILLA_BENCH_QUICK=1 shrinks the churn so CI smoke stays in seconds;
  // the keys emitted are identical either way.
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;
  const int frontier_nodes = 9408;  // the paper's Frontier allocation
  const int iterations = quick ? 2000 : 20000;

  std::cout << "=== Scheduling subsystem: placement churn at Frontier "
               "scale ("
            << frontier_nodes << " nodes, " << iterations
            << " place/release cycles) ===\n";
  Table table({"placer", "attempts", "wall [s]", "attempts/s"});
  const auto linear = run_churn(false, frontier_nodes, iterations, 42);
  const auto indexed = run_churn(true, frontier_nodes, iterations, 42);
  table.add_row({"linear scan", std::to_string(linear.attempts),
                 fixed(linear.seconds, 3), fixed(linear.attempts_per_sec())});
  table.add_row({"free index", std::to_string(indexed.attempts),
                 fixed(indexed.seconds, 3),
                 fixed(indexed.attempts_per_sec())});
  table.print();
  const double speedup =
      linear.attempts_per_sec() > 0
          ? indexed.attempts_per_sec() / linear.attempts_per_sec()
          : 0.0;
  std::cout << "  indexed/linear speedup: " << fixed(speedup, 1) << "x\n";

  const int campaign_nodes = quick ? 16 : 64;
  const int campaign_tasks = quick ? 500 : 4000;
  std::cout << "\n=== End-to-end campaign (flux, " << campaign_nodes
            << " nodes, " << campaign_tasks << " null tasks) ===\n";
  const auto campaign = run_campaign(campaign_nodes, campaign_tasks, 42);
  // Same campaign on a 4-shard calendar drained by 4 worker threads: the
  // full-stack threaded configuration. Identical schedule by the
  // thread-invariance oracle; only the wall clock may move.
  const auto campaign_mt =
      run_campaign(campaign_nodes, campaign_tasks, 42, 4, 4);
  Table summary({"stack", "makespan [s]", "avg tput [t/s]", "sim events/s"});
  summary.add_row({"serial", fixed(campaign.makespan, 1),
                   fixed(campaign.avg_tput),
                   fixed(campaign.events_per_sec, 0)});
  summary.add_row({"4 shards x 4 threads", fixed(campaign_mt.makespan, 1),
                   fixed(campaign_mt.avg_tput),
                   fixed(campaign_mt.events_per_sec, 0)});
  summary.print();

  const int storm_actors = quick ? 1024 : 2048;
  const int storm_steps = quick ? 800 : 2000;
  std::cout << "\n=== Sharded engine storm (" << storm_actors << " actors x "
            << storm_steps << " steps) ===\n";
  const auto storm_serial = run_storm_rate(1, 1, storm_actors, storm_steps);
  const auto storm_sharded = run_storm_rate(4, 4, storm_actors, storm_steps);
  const double storm_speedup =
      storm_serial.events_per_sec > 0
          ? storm_sharded.events_per_sec / storm_serial.events_per_sec
          : 0.0;
  Table storm_table({"engine", "events", "events/s"});
  storm_table.add_row({"serial (1 shard)", std::to_string(storm_serial.events),
                       fixed(storm_serial.events_per_sec, 0)});
  storm_table.add_row({"sharded (4x4)", std::to_string(storm_sharded.events),
                       fixed(storm_sharded.events_per_sec, 0)});
  storm_table.print();
  std::cout << "  sharded/serial speedup: " << fixed(storm_speedup, 2)
            << "x\n";

  kv("place_attempts_per_sec_linear", linear.attempts_per_sec());
  kv("place_attempts_per_sec_indexed", indexed.attempts_per_sec());
  kv("placement_speedup", speedup);
  kv("makespan_s", campaign.makespan);
  kv("events_per_sec", campaign.events_per_sec);
  kv("events_per_sec_fullstack_mt", campaign_mt.events_per_sec);
  kv("events_per_sec_storm_serial", storm_serial.events_per_sec);
  kv("events_per_sec_sharded", storm_sharded.events_per_sec);
  kv("storm_speedup", storm_speedup);
  return 0;
}
