// Extension bench: inference-service latency under open arrivals.
//
// §2 motivates "bursts of high-throughput, concurrent inference tasks" and
// streaming pipelines that need "rapid data exchange without blocking
// synchronization". Throughput benchmarks hide the user-visible metric for
// such services: task *turnaround latency*. This bench drives a
// Dragon-backed pilot with Poisson arrivals of function tasks at rising
// rates and reports the p50/p99 turnaround — showing the saturation knee
// as the offered load approaches the dispatcher's capacity.
#include <iostream>

#include "analytics/latency.hpp"
#include "harness.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/trace_replay.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

struct LatencyResult {
  analytics::LatencyHistogram turnaround;
  double completed_rate = 0.0;
};

LatencyResult run_at_rate(double rate_per_s) {
  core::Session session(platform::frontier_spec(), 16, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 16, .backends = {{"dragon"}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(60.0);
  core::TaskManager tmgr(session, pilot.agent());

  LatencyResult result;
  tmgr.on_complete([&](const core::Task& task) {
    sim::Time submitted = 0, done = 0;
    if (task.state_time(core::TaskState::kTmgrScheduling, submitted) &&
        task.state_time(core::TaskState::kDone, done)) {
      result.turnaround.record(done - submitted);
    }
  });

  core::TaskDescription proto;
  proto.demand.cores = 1;
  proto.duration = 0.5;  // the inference itself
  proto.modality = platform::TaskModality::kFunction;
  const int n = 6000;
  workloads::replay(tmgr, workloads::poisson_arrivals(n, rate_per_s, proto, 7),
                    session.now());
  session.run();
  const auto& metrics = pilot.agent().profiler().metrics();
  result.completed_rate = metrics.window_throughput();
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Extension: inference-service turnaround latency vs "
               "offered load (dragon, 16 nodes) ===\n";
  Table table({"arrival rate [t/s]", "served [t/s]", "p50 [s]", "p99 [s]",
               "max [s]"});
  for (const double rate : {200.0, 500.0, 700.0, 850.0, 950.0, 1100.0}) {
    const auto result = run_at_rate(rate);
    table.add_row({fixed(rate, 0), fixed(result.completed_rate),
                   fixed(result.turnaround.percentile(0.50), 3),
                   fixed(result.turnaround.percentile(0.99), 3),
                   fixed(result.turnaround.max(), 2)});
  }
  table.print();
  table.write_csv("extension_streaming_latency.csv");
  std::cout << "  Below the dispatcher's capacity, turnaround is the 0.5 s "
               "payload plus\n  milliseconds of middleware; past the knee, "
               "queueing delay dominates —\n  the latency-vs-throughput "
               "trade §2's streaming use cases care about.\n";
  return 0;
}
