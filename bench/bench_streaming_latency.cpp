// Extension bench: inference-service latency under open arrivals.
//
// §2 motivates "bursts of high-throughput, concurrent inference tasks" and
// streaming pipelines that need "rapid data exchange without blocking
// synchronization". Throughput benchmarks hide the user-visible metrics
// for such services: submit->launch latency (how long a client waits
// before its payload starts) and full turnaround. This bench puts a
// simulated 10^6-client population behind the service-mode ingress path
// (docs/ingress.md) — Poisson offers, admission control, amortized intake
// batching — in front of a Dragon-backed pilot, sweeps the offered rate
// through the dispatcher's saturation knee, and reports p50/p99/p999.
//
// Measurement note: an earlier revision timed turnaround from
// kTmgrScheduling, i.e. after the offer had already cleared intake — which
// hid the client-side intake/batch wait exactly where it matters (past the
// knee). Both histograms now start at the client's accepted offer
// (IngressService records them; see EXPERIMENTS.md).
//
// Machine-readable output: "KV key=value" lines feed
// scripts/bench_snapshot.sh; submit_launch_p{50,99,999}_ms come from the
// fixed below-knee SLO point (700 t/s offered) and
// ingress_sustained_rate_per_s is the peak served rate over the sweep.
// Both are gated against BENCH_baseline.json by scripts/bench_compare.py.
//
// FLOTILLA_BENCH_QUICK=1 trims the sweep and the per-rate offer count so
// CI smoke stays in seconds; the SLO point is measured in both modes.
#include <cstdlib>
#include <iostream>

#include "analytics/latency.hpp"
#include "harness.hpp"
#include "ingress/ingress.hpp"

using namespace flotilla;
using namespace flotilla::bench;

namespace {

constexpr double kSloRate = 700.0;  // below-knee point the KV gate pins
constexpr int kClients = 1'000'000;

struct LatencyResult {
  double served_rate = 0.0;
  double submit_launch_p50_ms = 0.0;
  double submit_launch_p99_ms = 0.0;
  double submit_launch_p999_ms = 0.0;
  analytics::LatencyHistogram turnaround;
};

LatencyResult run_at_rate(double rate_per_s, int offers) {
  core::Session session(platform::frontier_spec(), 16, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 16, .backends = {{"dragon"}}});
  pilot.launch([](bool, const std::string&) {});
  session.run(60.0);
  core::TaskManager tmgr(session, pilot.agent());

  ingress::IngressConfig config;
  config.clients = kClients;
  config.arrival.kind = ingress::ArrivalKind::kPoisson;
  config.arrival.rate = rate_per_s;
  // The sweep measures queueing, not shedding: an effectively unbounded
  // intake keeps every offer admitted so the knee shows up as latency.
  config.admit.capacity = static_cast<std::size_t>(offers) + 1;
  config.total_offers = offers;
  ingress::IngressService svc(session, tmgr, config);

  core::TaskDescription proto;
  proto.demand.cores = 1;
  proto.duration = 0.5;  // the inference itself
  proto.modality = platform::TaskModality::kFunction;
  svc.start({proto});
  session.run();

  LatencyResult result;
  const auto& lat = svc.submit_to_launch();
  result.submit_launch_p50_ms = lat.percentile(0.50) * 1e3;
  result.submit_launch_p99_ms = lat.percentile(0.99) * 1e3;
  result.submit_launch_p999_ms = lat.percentile(0.999) * 1e3;
  result.turnaround = svc.turnaround();
  result.served_rate = pilot.agent().profiler().metrics().window_throughput();
  return result;
}

}  // namespace

int main() {
  const bool quick = std::getenv("FLOTILLA_BENCH_QUICK") != nullptr;
  const int offers = quick ? 1500 : 6000;
  std::vector<double> rates = {200.0, 500.0, kSloRate, 850.0, 950.0, 1100.0};
  if (quick) rates = {200.0, kSloRate, 1100.0};

  std::cout << "=== Extension: inference-service latency vs offered load "
               "(10^6 clients -> ingress -> dragon, 16 nodes"
            << (quick ? ", quick" : "") << ") ===\n";
  Table table({"arrival rate [t/s]", "served [t/s]", "s->l p50 [ms]",
               "s->l p99 [ms]", "s->l p999 [ms]", "turnaround p50 [s]",
               "turnaround p99 [s]"});
  double slo_p50 = 0.0, slo_p99 = 0.0, slo_p999 = 0.0;
  double sustained = 0.0;
  for (const double rate : rates) {
    const auto result = run_at_rate(rate, offers);
    table.add_row({fixed(rate, 0), fixed(result.served_rate),
                   fixed(result.submit_launch_p50_ms, 2),
                   fixed(result.submit_launch_p99_ms, 2),
                   fixed(result.submit_launch_p999_ms, 2),
                   fixed(result.turnaround.percentile(0.50), 3),
                   fixed(result.turnaround.percentile(0.99), 3)});
    if (rate == kSloRate) {
      slo_p50 = result.submit_launch_p50_ms;
      slo_p99 = result.submit_launch_p99_ms;
      slo_p999 = result.submit_launch_p999_ms;
    }
    if (result.served_rate > sustained) sustained = result.served_rate;
  }
  table.print();
  table.write_csv("extension_streaming_latency.csv");
  std::cout << "  Below the dispatcher's capacity, submit->launch is "
               "milliseconds of intake\n  and placement; past the knee the "
               "bounded-intake wait dominates the tail —\n  the "
               "latency-vs-throughput trade §2's streaming use cases care "
               "about.\n";
  std::cout << "KV submit_launch_p50_ms=" << fixed(slo_p50, 3) << "\n";
  std::cout << "KV submit_launch_p99_ms=" << fixed(slo_p99, 3) << "\n";
  std::cout << "KV submit_launch_p999_ms=" << fixed(slo_p999, 3) << "\n";
  std::cout << "KV ingress_sustained_rate_per_s=" << fixed(sustained, 2)
            << "\n";
  return 0;
}
