// Table 1: the experiment matrix, printed from its encoded form so the
// other benches and this summary can never drift apart.
#include <iostream>
#include <sstream>

#include "experiments.hpp"
#include "harness.hpp"

using namespace flotilla::bench;

namespace {

std::string join(const std::vector<int>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  return os.str();
}

}  // namespace

int main() {
  std::cout << "=== Table 1: experiment matrix ===\n";
  Table table({"Exp ID", "Workload", "launcher", "#nodes/pilot",
               "#partitions", "task types", "#tasks", "#cores/task"});
  for (const auto& row : table1()) {
    table.add_row({row.id, row.workload, row.launcher, join(row.nodes),
                   join(row.partitions), row.task_types, row.n_tasks,
                   row.cores_per_task});
  }
  table.print();
  table.write_csv("table1_experiments.csv");
  return 0;
}
